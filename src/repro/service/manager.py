"""The service's brain: spec validation, content-addressed dedup, store I/O.

:class:`ServiceManager` is the only component of the service that touches
the :class:`~repro.orchestration.store.ResultStore`.  The HTTP layer
(:mod:`~repro.service.routers` / :mod:`~repro.service.server`) translates
requests into manager calls and manager return values into responses —
nothing else.  The manager, in turn, never executes a simulation: it
validates submissions through the run-API spec machinery and enqueues
them into the store's work queue, where pull-based workers
(:mod:`~repro.orchestration.worker`) — in-process pools spawned by
``drr-gossip serve --workers N`` or remote ``drr-gossip worker``
processes sharing the store — pick them up.

Content addressing is the whole trick.  A run's id *is* its canonical
spec hash (:func:`~repro.orchestration.store.cell_spec_hash`, equal to
``RunSpec.spec_hash()``), so:

* an identical **completed** spec is a cache hit: the stored
  ``RunResult`` envelope comes back immediately with ``cached: true``
  and no queue row is touched;
* an identical **in-flight** spec attaches to the existing queue row —
  the second client polls the same run id and both get the one result;
* only genuinely novel specs cost an execution.

Thread-safety: the manager serves a :class:`ThreadingHTTPServer`, so it
opens its store with ``check_same_thread=False`` and serialises every
store access behind one lock.  That is deliberate — a cached hit is one
indexed SELECT, so the lock is held for microseconds and the service
stays a thin layer over SQLite's own write serialisation.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Mapping

from ..api import RunSpec, SpecValidationError, parse_spec_document
from ..observability.logs import get_logger
from ..observability.telemetry import NULL_TELEMETRY, NullTelemetry
from ..orchestration.runner import cells_from_run_specs
from ..orchestration.store import ResultStore, cell_spec_hash

__all__ = ["ServiceManager"]

_logger = get_logger("service.manager")

#: queue states the service reports for a run id (plus "unknown")
RUN_STATES = ("pending", "claimed", "done", "failed")


class ServiceManager:
    """Owns the store on behalf of the HTTP layer; all methods are thread-safe."""

    def __init__(
        self,
        store_path: str,
        *,
        telemetry: NullTelemetry | None = None,
    ) -> None:
        self.store_path = str(store_path)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._store = ResultStore(store_path, check_same_thread=False)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # submission (POST /v1/runs, POST /v1/sweeps)
    # ------------------------------------------------------------------ #
    def submit(self, doc: Mapping[str, Any]) -> dict[str, Any]:
        """Validate one spec document and enqueue/attach/serve-from-cache.

        Returns ``{"run_id", "state", "cached"}``.  Raises
        :class:`~repro.api.SpecValidationError` on a malformed document
        (the router maps that to 400).
        """
        specs = parse_spec_document(doc, "request body")
        if len(specs) != 1:
            raise SpecValidationError(
                f"POST /v1/runs takes exactly one run spec, got {len(specs)} "
                "(use POST /v1/sweeps for fan-out)"
            )
        return self._submit_specs(specs)[0]

    def submit_sweep(self, doc: Mapping[str, Any]) -> dict[str, Any]:
        """Fan a multi-spec document out into per-cell submissions.

        The document is the spec-file shape (``{"runs": [...]}`` or a
        bare list) plus an optional top-level ``repetitions`` — extra
        cells with deterministic derived seeds, exactly like
        ``drr-gossip sweep --spec ... --reps``.
        """
        repetitions = 1
        if isinstance(doc, Mapping) and "repetitions" in doc:
            doc = dict(doc)
            raw = doc.pop("repetitions")
            try:
                repetitions = int(raw)
            except (TypeError, ValueError):
                raise SpecValidationError(f"repetitions must be an integer, got {raw!r}")
            if repetitions < 1:
                raise SpecValidationError(f"repetitions must be >= 1, got {repetitions}")
        specs = parse_spec_document(doc, "request body")
        runs = self._submit_specs(specs, repetitions=repetitions)
        return {
            "count": len(runs),
            "cached": sum(1 for r in runs if r["cached"]),
            "runs": runs,
        }

    def _submit_specs(
        self, specs: list[RunSpec], repetitions: int = 1
    ) -> list[dict[str, Any]]:
        cells = cells_from_run_specs(specs, repetitions=repetitions)
        out: list[dict[str, Any]] = []
        to_enqueue: list[tuple[str, str, int, str]] = []
        telemetry = self.telemetry
        with self._lock:
            seen: set[str] = set()
            for cell in cells:
                spec_json = cell.spec_json()
                # The cell's content address equals RunSpec.spec_hash()
                # (cell_spec_hash pops the non-identity telemetry toggle),
                # so the digest doubles as the public run id.
                run_id = cell_spec_hash(spec_json)
                if run_id in seen:
                    # duplicate inside one submission: report the twin as
                    # cached-on-arrival against the first occurrence
                    out.append({"run_id": run_id, "state": "pending", "cached": True})
                    continue
                seen.add(run_id)
                run = self._store.get_by_spec_hash(run_id)
                if run is not None and run.ok:
                    telemetry.count("service.cache_hits")
                    out.append({"run_id": run_id, "state": "done", "cached": True})
                    continue
                row = self._store.queue_cell_by_spec_hash(run_id)
                if row is not None and row.state in ("pending", "claimed"):
                    # identical spec already in flight: attach, don't re-queue
                    telemetry.count("service.attached")
                    out.append({"run_id": run_id, "state": row.state, "cached": False})
                    continue
                to_enqueue.append((cell.experiment, cell.param_hash, cell.seed, spec_json))
                out.append({"run_id": run_id, "state": "pending", "cached": False})
            if to_enqueue:
                self._store.enqueue_cells(to_enqueue)
                telemetry.count("service.enqueued", len(to_enqueue))
        return out

    # ------------------------------------------------------------------ #
    # retry (POST /v1/runs/{id}/retry)
    # ------------------------------------------------------------------ #
    def retry(self, run_id: str) -> tuple[int, dict[str, Any]]:
        """Resubmit a *failed* queue row: ``(http_status, body)``.

        202 with the refreshed row when the run id's queue row was
        ``failed`` (it goes back to ``pending`` with a cleared attempt
        budget, so workers pick it up again); 409 naming the current
        state for any other row — a done run is a cache hit, a
        pending/claimed one is already on its way; 404 for an id the
        store has never seen.  This is the operator path for poison
        cells the attempt budget gave up on — no SQLite surgery needed.
        """
        with self._lock:
            cell = self._store.retry_cell(run_id)
            run = self._store.get_by_spec_hash(run_id) if cell is None else None
            row = self._store.queue_cell_by_spec_hash(run_id) if cell is None else None
        if cell is not None:
            self.telemetry.count("service.retried")
            _logger.info("run %s: failed queue row reset to pending", run_id)
            return 202, {"run_id": run_id, "state": cell.state, "retried": True}
        if run is None and row is None:
            return 404, {"error": f"unknown run id {run_id!r}", "run_id": run_id}
        if run is not None and run.ok:
            state = "done"
        elif row is not None:
            state = row.state
        else:
            state = "failed"
        detail = (
            "its failure predates the queue row (resubmit the spec instead)"
            if state == "failed"
            else f"only failed runs can be retried, this one is {state!r}"
        )
        return 409, {
            "error": f"run {run_id} is {state!r}, not retryable: {detail}",
            "run_id": run_id,
            "state": state,
            "retried": False,
        }

    # ------------------------------------------------------------------ #
    # reads (GET /v1/runs/{id}, .../result, /v1/queue, /v1/healthz)
    # ------------------------------------------------------------------ #
    def status(self, run_id: str) -> dict[str, Any] | None:
        """Queue/result state of one run id; None when the id is unknown."""
        with self._lock:
            run = self._store.get_by_spec_hash(run_id)
            row = self._store.queue_cell_by_spec_hash(run_id)
            heartbeat_age = (
                self._store.claim_age_s(row.key)
                if row is not None and row.state == "claimed"
                else None
            )
        if run is None and row is None:
            return None
        if run is not None and run.ok:
            state = "done"
        elif row is not None:
            state = row.state
        else:
            state = "failed"
        doc: dict[str, Any] = {
            "run_id": run_id,
            "state": state,
            "attempt": row.attempt if row is not None else 0,
            "owner": row.owner if row is not None else None,
            "heartbeat_age_s": heartbeat_age,
            "has_result": bool(run is not None and run.ok),
        }
        if run is not None:
            doc["duration_s"] = run.duration_s
            if not run.ok:
                doc["error"] = run.error
        return doc

    def result(self, run_id: str) -> tuple[int, dict[str, Any]]:
        """The stored ``RunResult`` envelope: ``(http_status, body)``.

        200 with the envelope once the run is done; 409 while it is
        pending/claimed (body names the state, so clients back off and
        poll); 409 with the error for a failed run; 404 for an unknown
        id or a run that stored no envelope (non-protocol cells).
        """
        with self._lock:
            run = self._store.get_by_spec_hash(run_id)
            row = self._store.queue_cell_by_spec_hash(run_id)
        if run is not None and run.ok:
            if run.result_json is None:
                return 404, {
                    "error": f"run {run_id} stored no result envelope "
                    "(recorded before the service existed, or not a protocol run)",
                    "run_id": run_id,
                }
            return 200, {"run_id": run_id, "cached": True, "result": json.loads(run.result_json)}
        if run is not None and not run.ok:
            return 409, {"run_id": run_id, "state": "failed", "error": run.error}
        if row is not None:
            return 409, {"run_id": run_id, "state": row.state, "attempt": row.attempt}
        return 404, {"error": f"unknown run id {run_id!r}", "run_id": run_id}

    def queue(self) -> dict[str, Any]:
        """Whole-queue depth plus the per-experiment breakdown."""
        with self._lock:
            depth = self._store.queue_depth()
            counts = self._store.queue_counts()
        return {"depth": depth, "experiments": counts}

    def healthz(self) -> dict[str, Any]:
        with self._lock:
            depth = self._store.queue_depth()
            runs = len(self._store)
        return {
            "status": "ok",
            "store": self.store_path,
            "queue": depth,
            "stored_runs": runs,
        }

    def close(self) -> None:
        self._store.close()

    def __enter__(self) -> "ServiceManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
