"""The HTTP transport: stdlib ``ThreadingHTTPServer`` over the router.

Nothing here parses specs or reads the store — the handler decodes the
JSON body, hands ``(method, path, body)`` to the
:class:`~repro.service.routers.Router`, and writes the (status, document)
it gets back.  ``ThreadingHTTPServer`` gives each connection its own
thread; the :class:`~repro.service.manager.ServiceManager` behind the
router is built for that (one locked store connection).

Zero dependencies beyond the standard library, matching the package's
``pip install .`` story: ``numpy`` is the only requirement and the
service adds nothing.

:class:`WorkerPool` is the optional execution half of ``drr-gossip
serve --workers N``: it spawns N ``python -m repro worker`` subprocesses
against the same store with an infinite linger (they poll until told to
stop) and SIGTERMs them on shutdown — which the workers' graceful
shutdown path (:func:`~repro.orchestration.worker.signal_shutdown`)
turns into released claims, not abandoned leases.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any

from ..observability.logs import get_logger
from ..observability.telemetry import NullTelemetry
from .manager import ServiceManager
from .routers import Router

__all__ = ["ServiceServer", "WorkerPool"]

_logger = get_logger("service.server")

#: request bodies beyond this are rejected up front (a spec document is
#: a few KB; nothing legitimate comes close)
MAX_BODY_BYTES = 4 * 1024 * 1024


def _make_handler(router: Router):
    class Handler(BaseHTTPRequestHandler):
        # Keep-alive matters here: the client's poll loop reuses one
        # connection, and HTTP/1.1 + explicit Content-Length enables it.
        protocol_version = "HTTP/1.1"
        # http.server writes status/headers/body as separate small sends;
        # without TCP_NODELAY those interact with delayed ACKs into ~40ms
        # per keep-alive request, dwarfing the cache lookup itself.
        disable_nagle_algorithm = True

        def _respond(self, status: int, doc: dict[str, Any]) -> None:
            body = json.dumps(doc, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _handle(self, method: str) -> None:
            body = None
            length = int(self.headers.get("Content-Length") or 0)
            if length > MAX_BODY_BYTES:
                self._respond(413, {"error": f"body too large ({length} bytes)"})
                return
            if length:
                raw = self.rfile.read(length)
                try:
                    body = json.loads(raw)
                except json.JSONDecodeError as exc:
                    self._respond(400, {"error": f"invalid JSON body: {exc}"})
                    return
            status, doc = router.route(method, self.path, body)
            self._respond(status, doc)

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            self._handle("GET")

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            self._handle("POST")

        def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
            _logger.debug("%s %s", self.address_string(), format % args)

    return Handler


class ServiceServer:
    """One bound, optionally background-threaded, job-service endpoint."""

    def __init__(
        self,
        store_path: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        telemetry: NullTelemetry | None = None,
    ) -> None:
        self.manager = ServiceManager(store_path, telemetry=telemetry)
        self.router = Router(self.manager)
        self._httpd = ThreadingHTTPServer((host, port), _make_handler(self.router))
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceServer":
        """Serve on a background thread (tests, embedded use)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-service", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI's foreground mode)."""
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._httpd.server_close()
        self.manager.close()

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class WorkerPool:
    """N ``python -m repro worker`` subprocesses draining the served store."""

    def __init__(
        self,
        store_path: str,
        workers: int,
        *,
        lease_s: float = 60.0,
        max_attempts: int = 3,
        poll_s: float = 0.2,
        heartbeat_s: float = 15.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.store_path = str(store_path)
        self.workers = int(workers)
        self._command = [
            sys.executable, "-m", "repro", "worker",
            "--store", self.store_path,
            "--lease", str(lease_s),
            "--max-attempts", str(max_attempts),
            "--poll", str(poll_s),
            "--heartbeat", str(heartbeat_s),
            # linger forever: the pool lives as long as the service and
            # exits via SIGTERM (graceful claim release), not via drain
            "--linger", "inf",
        ]
        self._procs: list[subprocess.Popen] = []

    def start(self) -> "WorkerPool":
        import repro

        env = dict(os.environ)
        package_root = str(Path(repro.__file__).resolve().parents[1])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = package_root + (os.pathsep + existing if existing else "")
        self._procs = [
            subprocess.Popen(
                self._command + ["--worker-id", f"serve:{os.getpid()}:w{index}"], env=env
            )
            for index in range(self.workers)
        ]
        _logger.info("started %d queue worker(s) on %s", self.workers, self.store_path)
        return self

    def stop(self, timeout_s: float = 30.0) -> None:
        """SIGTERM the pool; workers release in-flight claims and exit 0."""
        for proc in self._procs:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        for proc in self._procs:
            try:
                proc.wait(timeout=timeout_s)
            except subprocess.TimeoutExpired:  # pragma: no cover - last resort
                _logger.warning("worker pid %d ignored SIGTERM, killing", proc.pid)
                proc.kill()
                proc.wait()
        self._procs = []

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
