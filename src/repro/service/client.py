"""Tiny stdlib client for the simulation service.

``http.client`` over one persistent connection (the server speaks
HTTP/1.1 keep-alive), JSON bodies, and retry with exponential backoff on
the two transient failure shapes a busy service produces: a 503 from a
locked store, and a dropped/refused connection during restarts.  No
third-party dependencies, same as the server.

Typical use::

    from repro.service import ServiceClient

    with ServiceClient("http://127.0.0.1:8642") as client:
        submitted = client.submit({"protocol": "drr-gossip", "n": 4096, "seed": 7})
        status = client.wait_for(submitted["run_id"], timeout_s=120)
        envelope = client.result(submitted["run_id"])["result"]

``submit`` takes a plain spec document (any shape a spec file accepts) or
a :class:`~repro.api.RunSpec`; ``result`` returns the response document
whose ``"result"`` key holds the full serialised
:class:`~repro.api.RunResult` (``RunResult.from_dict`` rebuilds it).
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from typing import Any, Mapping

__all__ = ["ServiceClient", "ServiceError"]

#: HTTP statuses the client retries (with backoff) instead of raising
_RETRY_STATUSES = (503,)


class ServiceError(RuntimeError):
    """A non-retryable service response (4xx/5xx after retries)."""

    def __init__(self, status: int, body: Mapping[str, Any]) -> None:
        super().__init__(f"HTTP {status}: {body.get('error', body)}")
        self.status = int(status)
        self.body = dict(body)


class ServiceClient:
    """Blocking JSON-over-HTTP client with 503/connection-retry semantics."""

    def __init__(
        self,
        base_url: str,
        *,
        timeout_s: float = 30.0,
        retries: int = 5,
        backoff_s: float = 0.1,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        parsed = urllib.parse.urlsplit(base_url)
        if parsed.scheme not in ("http", ""):
            raise ValueError(f"only http:// service URLs are supported, got {base_url!r}")
        netloc = parsed.netloc or parsed.path  # tolerate a bare "host:port"
        self.host = netloc.rsplit(":", 1)[0]
        self.port = int(netloc.rsplit(":", 1)[1]) if ":" in netloc else 80
        self.timeout_s = float(timeout_s)
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout_s)
        return self._conn

    def _drop_connection(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def request(self, method: str, path: str, body: Any = None) -> dict[str, Any]:
        """One API call; returns the decoded document or raises :class:`ServiceError`.

        Retries transparently on 503 (store busy) and on connection
        errors (service restarting), backing off exponentially; every
        other non-2xx response raises immediately with the response body
        attached.
        """
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if payload is not None else {}
        delay = self.backoff_s
        last: ServiceError | None = None
        for attempt in range(self.retries + 1):
            try:
                conn = self._connection()
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except (http.client.HTTPException, ConnectionError, OSError):
                # server restarting or keep-alive connection torn down:
                # reconnect from scratch on the next attempt
                self._drop_connection()
                if attempt == self.retries:
                    raise
                time.sleep(delay)
                delay *= 2
                continue
            doc = json.loads(raw) if raw else {}
            if response.status in _RETRY_STATUSES:
                last = ServiceError(response.status, doc)
                if attempt == self.retries:
                    raise last
                time.sleep(delay)
                delay *= 2
                continue
            if response.status >= 400 and response.status not in (409,):
                raise ServiceError(response.status, doc)
            doc["_status"] = response.status
            return doc
        raise last if last is not None else AssertionError("unreachable")

    # ------------------------------------------------------------------ #
    # API surface
    # ------------------------------------------------------------------ #
    def submit(self, spec: Any) -> dict[str, Any]:
        """POST one spec (document or RunSpec) → ``{run_id, state, cached}``."""
        doc = spec.to_dict() if hasattr(spec, "to_dict") else spec
        return self.request("POST", "/v1/runs", doc)

    def submit_sweep(self, specs: Any, repetitions: int = 1) -> dict[str, Any]:
        """POST a multi-spec fan-out → per-cell ``{run_id, state, cached}`` list."""
        runs = [s.to_dict() if hasattr(s, "to_dict") else s for s in specs]
        body: dict[str, Any] = {"runs": runs}
        if repetitions != 1:
            body["repetitions"] = repetitions
        return self.request("POST", "/v1/sweeps", body)

    def status(self, run_id: str) -> dict[str, Any]:
        return self.request("GET", f"/v1/runs/{run_id}")

    def result(self, run_id: str) -> dict[str, Any]:
        """The result document (``_status`` 409 while the run is in flight)."""
        return self.request("GET", f"/v1/runs/{run_id}/result")

    def retry(self, run_id: str) -> dict[str, Any]:
        """Reset a failed run's queue row to pending (``_status`` 409 otherwise)."""
        return self.request("POST", f"/v1/runs/{run_id}/retry")

    def wait_for(
        self, run_id: str, *, timeout_s: float = 300.0, poll_s: float = 0.2
    ) -> dict[str, Any]:
        """Poll until the run id reaches a terminal state; returns the status.

        Raises :class:`TimeoutError` when ``timeout_s`` elapses first and
        :class:`ServiceError` when the run ends ``failed``.
        """
        deadline = time.monotonic() + float(timeout_s)
        while True:
            status = self.status(run_id)
            if status["state"] == "done":
                return status
            if status["state"] == "failed":
                raise ServiceError(409, status)
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"run {run_id} still {status['state']} after {timeout_s:.0f}s"
                )
            time.sleep(poll_s)

    def queue(self) -> dict[str, Any]:
        return self.request("GET", "/v1/queue")

    def healthz(self) -> dict[str, Any]:
        return self.request("GET", "/v1/healthz")

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
