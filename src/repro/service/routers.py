"""Request routing: (method, path, body) → (status, response document).

The router is the thin layer of the service — it knows URL shapes and
status codes, and nothing about specs, stores, or protocols (deliberately
no imports from the substrate or the protocol registry; everything
reaches the simulation layer through the
:class:`~repro.service.manager.ServiceManager`).  Keeping it free of the
``http.server`` machinery too means a unit test can drive the whole API
surface as plain function calls, and an alternative transport (asgi,
RPC) could reuse it unchanged.

Routes
------
==========  ==========================  =====================================
``POST``    ``/v1/runs``                submit one RunSpec → run id
``GET``     ``/v1/runs/{id}``           queue/result status of one run id
``GET``     ``/v1/runs/{id}/result``    the stored RunResult envelope
``POST``    ``/v1/runs/{id}/retry``     reset a failed queue row to pending
``POST``    ``/v1/sweeps``              multi-spec fan-out → per-cell ids
``GET``     ``/v1/queue``               queue depth + per-experiment counts
``GET``     ``/v1/healthz``             liveness + store identity
==========  ==========================  =====================================

Error mapping: a malformed document is 400 (body carries the validation
message), an unknown id is 404, a result read before the run finished is
409, a store busy/locked error is 503 (clients retry with backoff), and
anything unexpected is 500.
"""

from __future__ import annotations

import re
import sqlite3
from typing import Any, Mapping

from ..api import SpecValidationError
from ..observability.logs import get_logger
from .manager import ServiceManager

__all__ = ["Router"]

_logger = get_logger("service.routers")

_RUN_PATH = re.compile(r"^/v1/runs/(?P<run_id>[0-9a-f]{8,64})$")
_RESULT_PATH = re.compile(r"^/v1/runs/(?P<run_id>[0-9a-f]{8,64})/result$")
_RETRY_PATH = re.compile(r"^/v1/runs/(?P<run_id>[0-9a-f]{8,64})/retry$")


class Router:
    """Dispatch one parsed request against a :class:`ServiceManager`."""

    def __init__(self, manager: ServiceManager) -> None:
        self.manager = manager

    def route(
        self, method: str, path: str, body: Mapping[str, Any] | list | None
    ) -> tuple[int, dict[str, Any]]:
        """Handle one request; always returns ``(http_status, json_doc)``."""
        telemetry = self.manager.telemetry
        telemetry.count("service.requests")
        try:
            with telemetry.span(f"service.{method} {self._route_label(path)}"):
                return self._dispatch(method, path, body)
        except SpecValidationError as exc:
            telemetry.count("service.rejected")
            return 400, {"error": str(exc)}
        except sqlite3.OperationalError as exc:
            message = str(exc).lower()
            if "locked" in message or "busy" in message:
                telemetry.count("service.busy")
                return 503, {"error": "store busy, retry", "retry_after_s": 0.2}
            raise
        except Exception as exc:  # pragma: no cover - defensive catch-all
            _logger.exception("unhandled error handling %s %s", method, path)
            telemetry.count("service.errors")
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    @staticmethod
    def _route_label(path: str) -> str:
        """Collapse run ids out of the path so telemetry spans aggregate."""
        if _RESULT_PATH.match(path):
            return "/v1/runs/{id}/result"
        if _RETRY_PATH.match(path):
            return "/v1/runs/{id}/retry"
        if _RUN_PATH.match(path):
            return "/v1/runs/{id}"
        return path

    def _dispatch(
        self, method: str, path: str, body: Mapping[str, Any] | list | None
    ) -> tuple[int, dict[str, Any]]:
        manager = self.manager
        if method == "POST" and path == "/v1/runs":
            if body is None:
                raise SpecValidationError("POST /v1/runs needs a JSON spec document body")
            submitted = manager.submit(body)
            return (200 if submitted["cached"] else 202), submitted
        if method == "POST":
            match = _RETRY_PATH.match(path)
            if match:
                return manager.retry(match.group("run_id"))
        if method == "POST" and path == "/v1/sweeps":
            if body is None:
                raise SpecValidationError("POST /v1/sweeps needs a JSON spec document body")
            return 202, manager.submit_sweep(body)
        if method == "GET":
            match = _RESULT_PATH.match(path)
            if match:
                return manager.result(match.group("run_id"))
            match = _RUN_PATH.match(path)
            if match:
                status = manager.status(match.group("run_id"))
                if status is None:
                    return 404, {"error": f"unknown run id {match.group('run_id')!r}"}
                return 200, status
            if path == "/v1/queue":
                return 200, manager.queue()
            if path == "/v1/healthz":
                return 200, manager.healthz()
        if method not in ("GET", "POST"):
            return 405, {"error": f"method {method} not allowed"}
        return 404, {"error": f"no route for {method} {path}"}
