"""repro -- reproduction of "Optimal Gossip-Based Aggregate Computation".

Chen & Pandurangan, SPAA 2010 (arXiv:1001.3242).

The package implements the paper's DRR-gossip protocols, the baselines they
are compared against, a round-based simulator of the random phone-call model,
the sparse-network (Chord) machinery of Section 4, the address-oblivious
lower-bound experiment of Section 5, and the benchmark harness that
regenerates Table 1 and the per-theorem measurements.

Quickstart
----------
>>> import numpy as np
>>> from repro import drr_gossip_average
>>> values = np.random.default_rng(0).normal(size=1024)
>>> result = drr_gossip_average(values, rng=0)
>>> result.max_relative_error <= 0.05
True

Or, through the declarative run API (serializable specs, one entry point
for every protocol — see :mod:`repro.api`):

>>> import repro
>>> spec = repro.RunSpec(protocol="drr-gossip", params={"n": 1024}, seed=0)
>>> repro.run(spec).summary["max_rel_error"] <= 0.05
True
"""

from .core import (
    Aggregate,
    DRRGossipConfig,
    DRRGossipResult,
    DRRResult,
    Forest,
    drr_gossip,
    drr_gossip_average,
    drr_gossip_count,
    drr_gossip_max,
    drr_gossip_min,
    drr_gossip_rank,
    drr_gossip_sum,
    exact_aggregate,
    run_drr,
    run_local_drr,
)
from .simulator import FailureModel, MetricsCollector, make_rng
from .substrate import available_backends, get_kernel
from .api import (
    RunResult,
    RunSpec,
    SpecValidationError,
    TopologySpec,
    load_spec,
    load_specs,
    protocol_names,
    run,
    run_many,
)

__version__ = "1.1.0"

__all__ = [
    "Aggregate",
    "DRRGossipConfig",
    "DRRGossipResult",
    "DRRResult",
    "Forest",
    "drr_gossip",
    "drr_gossip_average",
    "drr_gossip_count",
    "drr_gossip_max",
    "drr_gossip_min",
    "drr_gossip_rank",
    "drr_gossip_sum",
    "exact_aggregate",
    "run_drr",
    "run_local_drr",
    "FailureModel",
    "MetricsCollector",
    "make_rng",
    "available_backends",
    "get_kernel",
    "RunResult",
    "RunSpec",
    "SpecValidationError",
    "TopologySpec",
    "load_spec",
    "load_specs",
    "protocol_names",
    "run",
    "run_many",
    "__version__",
]
