"""Canonical JSON serialisation shared by the run API and the result store.

Two subsystems need a *stable* textual form of "the same parameters":

* :mod:`repro.api` hashes a :class:`~repro.api.RunSpec` to derive its
  identity (and, in sweeps, per-repetition seeds), and
* :mod:`repro.orchestration.store` keys its SQLite rows on a parameter
  hash so skip-completed resume works across processes and hosts.

Both used to roll their own normalisation, which is exactly how two
descriptions of the same run can drift apart: a nested dict built in a
different insertion order, a NumPy scalar instead of a Python int, or a
tuple instead of a list must not change the hash — while any *value*
change must.  This module is the single place where that equivalence is
defined:

* mappings are serialised with sorted keys (recursively — ``json.dumps``
  with ``sort_keys=True`` sorts nested objects too),
* tuples and lists are interchangeable (both become JSON arrays),
* NumPy integers/floats/bools/arrays become native Python values,
* enums serialise as their ``.value``, and
* anything else falls back to ``str()``.

Keep this module dependency-free (NumPy aside): it sits below every other
layer of the package.
"""

from __future__ import annotations

import enum
import hashlib
import json
from typing import Any, Mapping

import numpy as np

__all__ = ["canonical_value", "canonical_json", "stable_digest"]


def canonical_value(value: Any) -> Any:
    """Normalise ``value`` into plain JSON-representable Python objects.

    The result is insensitive to dict insertion order (ordering is applied
    at serialisation time), tuple-vs-list spelling, and NumPy scalar types.
    """
    if isinstance(value, Mapping):
        return {str(k): canonical_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical_value(v) for v in value]
    if isinstance(value, enum.Enum):
        return canonical_value(value.value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [canonical_value(v) for v in value.tolist()]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def canonical_json(value: Any) -> str:
    """Serialise ``value`` to its canonical compact JSON form.

    Equal values (up to the equivalences of :func:`canonical_value`)
    produce byte-identical strings, which is what makes the derived
    hashes — and therefore seeds and store keys — collision-safe against
    nested-dict ordering.
    """
    return json.dumps(canonical_value(value), sort_keys=True, separators=(",", ":"))


def stable_digest(value: Any, length: int = 16) -> str:
    """Hex digest of the canonical JSON form (``length`` hex chars)."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()[:length]
