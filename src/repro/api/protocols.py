"""Protocol registry: name -> adapter behind :func:`repro.run`.

Every protocol the package implements — complete-graph DRR, the DRR-gossip
pipelines, the four baselines, and the topology workloads (Local-DRR,
flooding, batched Chord lookups) — registers an *adapter* here.  An adapter
is a thin callable that translates a validated parameter binding plus the
run-scoped context (generator, failure model, backend, built topology) into
a call to the existing ``run_X`` protocol function, and normalises the
outcome into the uniform envelope fields of
:class:`~repro.api.result.RunResult`.

The per-protocol parameter schema is derived from the adapter's own
signature (the same technique the experiment registry uses for sweep
grids), so "what can go in ``RunSpec.params``" is never maintained by hand:
adding a keyword to an adapter is all it takes to make it spec-addressable,
and unknown or extra parameters fail validation with the list of valid
names.

Value-carrying protocols accept either an explicit ``values`` list (JSON
serialisable, and what keeps comparison experiments on *identical* inputs
across algorithms) or a ``workload`` name whose values are drawn from the
run's generator before the protocol starts — the same draw order the
experiment drivers always used, which is why spec-driven runs reproduce
them bit-for-bit.
"""

from __future__ import annotations

import enum
import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from ..serialization import canonical_value
from ..simulator.failures import FailureModel
from ..simulator.metrics import MetricsCollector
from .errors import SpecValidationError

__all__ = [
    "ProtocolParam",
    "ProtocolSpec",
    "RunContext",
    "ProtocolOutput",
    "register_protocol",
    "get_protocol",
    "protocol_names",
    "PROTOCOLS",
]


def _as_int(value: Any, what: str) -> int:
    """``int()`` with spec-shaped error reporting for adapter parameters."""
    try:
        return int(value)
    except (TypeError, ValueError) as exc:
        raise SpecValidationError(f"{what} must be an integer, got {value!r}") from exc


@dataclass(frozen=True)
class RunContext:
    """Run-scoped state the dispatcher hands every adapter."""

    rng: np.random.Generator
    failure_model: FailureModel
    backend: str
    #: the built topology (Topology or ChordNetwork) when the spec named one
    topology: Any = None

    def resolve_values(self, n: int | None, workload: str, values: Any) -> np.ndarray:
        """Materialise the protocol's input vector.

        Explicit ``values`` win (and consume no randomness); otherwise
        ``n`` values of ``workload`` are drawn from the run's generator.
        """
        from ..harness.workloads import make_values

        if values is not None:
            try:
                arr = np.asarray(values, dtype=float)
            except (TypeError, ValueError) as exc:
                raise SpecValidationError(f"'values' must be a flat list of numbers: {exc}") from exc
            if arr.ndim != 1 or arr.size == 0:
                raise SpecValidationError("'values' must be a non-empty flat list of numbers")
            if n is not None and _as_int(n, "'n'") != arr.size:
                raise SpecValidationError(
                    f"'n' ({n}) contradicts the length of 'values' ({arr.size}); drop one"
                )
            return arr
        if n is None:
            raise SpecValidationError("specify either 'n' (+ optional 'workload') or 'values'")
        try:
            return make_values(workload, _as_int(n, "'n'"), self.rng)
        except ValueError as exc:
            raise SpecValidationError(str(exc)) from exc


@dataclass(frozen=True)
class ProtocolOutput:
    """What an adapter returns: metrics plus the protocol-shaped outcome.

    ``estimates`` and ``summary`` may be zero-argument callables: the
    envelope evaluates them lazily on first access, so adapters whose
    statistics require extra passes over the run (forest depth/size
    reductions) charge nothing to callers that only read the counters.
    """

    metrics: MetricsCollector
    #: per-node (or per-route) estimate vector; the exact-reproducibility
    #: guarantee of the API covers this array element-wise
    estimates: np.ndarray | Callable[[], np.ndarray] | None
    #: scalar outcome summary (exact value, error, coverage, ...)
    summary: dict[str, float] | Callable[[], dict[str, float]] = field(default_factory=dict)
    #: the underlying protocol result object (not serialised)
    raw: Any = None
    #: fault-degradation section (survivor counts, per-epoch error curve,
    #: ...); populated by churn-capable adapters on churn runs, else None
    degradation: dict[str, Any] | None = None


@dataclass(frozen=True)
class ProtocolParam:
    """One spec-settable parameter of a protocol adapter."""

    name: str
    default: Any

    def coerce(self, value: Any) -> Any:
        """Normalise one candidate value to a serialisation-stable form."""
        value = canonical_value(value)
        if isinstance(self.default, bool):
            return bool(value)
        if isinstance(self.default, int) and not isinstance(self.default, bool) and isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(self.default, float) and isinstance(value, int) and not isinstance(value, bool):
            return float(value)
        return value


@dataclass(frozen=True)
class ProtocolSpec:
    """A registered protocol: adapter callable plus its parameter schema."""

    name: str
    runner: Callable[..., ProtocolOutput]
    description: str
    #: 'forbidden' (complete-graph protocol), 'optional-graph' (complete
    #: graph by default, sparse graph when one is supplied), 'graph', or
    #: 'chord'
    topology: str
    params: tuple[ProtocolParam, ...] = ()
    #: 'none' (static membership only), 'crashes' (mid-run crashes but no
    #: joins), or 'full' (crashes and joins).  Dispatch rejects churn specs
    #: that exceed the protocol's capability instead of silently ignoring
    #: the churn model.
    churn: str = "none"

    @classmethod
    def from_callable(
        cls,
        name: str,
        runner: Callable[..., ProtocolOutput],
        topology: str,
        description: str | None = None,
        churn: str = "none",
    ) -> "ProtocolSpec":
        """Derive the parameter schema from the adapter's signature.

        Every parameter after the leading ``ctx`` must have a default, so a
        protocol is always runnable from its name alone (plus a topology
        where required).
        """
        params: list[ProtocolParam] = []
        signature = inspect.signature(runner)
        for index, param in enumerate(signature.parameters.values()):
            if index == 0:  # the RunContext
                continue
            if param.default is inspect.Parameter.empty:
                raise TypeError(
                    f"protocol adapter {runner.__qualname__} for {name!r} has a "
                    f"parameter without default ({param.name!r})"
                )
            params.append(ProtocolParam(name=param.name, default=param.default))
        if description is None:
            doc = inspect.getdoc(runner) or name
            description = doc.splitlines()[0]
        return cls(
            name=name, runner=runner, description=description,
            topology=topology, params=tuple(params), churn=churn,
        )

    @property
    def param_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.params)

    def validate_params(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """Reject unknown names, coerce values, and normalise enums/NumPy."""
        if not isinstance(params, Mapping):
            raise SpecValidationError(
                f"protocol {self.name!r}: params must be a table/object, got {params!r}"
            )
        by_name = {p.name: p for p in self.params}
        validated: dict[str, Any] = {}
        for key, value in params.items():
            key = str(key)
            if key not in by_name:
                raise SpecValidationError(
                    f"protocol {self.name!r} has no parameter {key!r} "
                    f"(valid: {', '.join(self.param_names) or 'none'})"
                )
            if isinstance(value, enum.Enum):
                value = value.value
            validated[key] = by_name[key].coerce(value)
        return validated

    def validate_topology(self, topology) -> None:
        if self.topology == "forbidden":
            if topology is not None:
                raise SpecValidationError(
                    f"protocol {self.name!r} runs on the complete graph and takes no topology"
                )
            return
        if self.topology == "optional-graph":
            if topology is not None and topology.family == "chord":
                raise SpecValidationError(
                    f"protocol {self.name!r} runs on the complete graph or a "
                    f"graph topology, not chord"
                )
            return
        if topology is None:
            raise SpecValidationError(
                f"protocol {self.name!r} needs a topology ({self.topology})"
            )
        if self.topology == "chord" and topology.family != "chord":
            raise SpecValidationError(
                f"protocol {self.name!r} needs a chord topology, got {topology.family!r}"
            )
        if self.topology == "graph" and topology.family == "chord":
            raise SpecValidationError(
                f"protocol {self.name!r} runs on a graph topology, not chord"
            )

    def validate_failures(self, failure_model: FailureModel) -> None:
        """Reject churn the protocol cannot honour (loss/crashes always ok)."""
        if not failure_model.has_churn or self.churn == "full":
            return
        if self.churn == "none":
            raise SpecValidationError(
                f"protocol {self.name!r} assumes static membership and does "
                f"not support mid-run churn (churn-capable protocols: "
                f"{', '.join(churn_capable_protocols()) or 'none'})"
            )
        if failure_model.has_joins:
            raise SpecValidationError(
                f"protocol {self.name!r} is crash-only under churn: a node "
                f"cannot rejoin a structure built before it returned (set "
                f"join_rate=0 and use no 'join' schedule events, or use the "
                f"'epoch-gossip-ave' protocol, which restarts every epoch)"
            )

    def run(self, ctx: RunContext, params: Mapping[str, Any]) -> ProtocolOutput:
        return self.runner(ctx, **dict(params))


#: The process-wide protocol registry behind :func:`repro.run`.
PROTOCOLS: dict[str, ProtocolSpec] = {}


def register_protocol(
    name: str,
    *,
    topology: str = "forbidden",
    description: str | None = None,
    churn: str = "none",
):
    """Register a protocol adapter (decorator)."""
    if topology not in ("forbidden", "optional-graph", "graph", "chord"):
        raise ValueError(
            f"topology must be 'forbidden', 'optional-graph', 'graph', or "
            f"'chord', got {topology!r}"
        )
    if churn not in ("none", "crashes", "full"):
        raise ValueError(f"churn must be 'none', 'crashes', or 'full', got {churn!r}")

    def _register(fn: Callable[..., ProtocolOutput]) -> Callable[..., ProtocolOutput]:
        if name in PROTOCOLS and PROTOCOLS[name].runner is not fn:
            raise ValueError(f"protocol {name!r} is already registered")
        PROTOCOLS[name] = ProtocolSpec.from_callable(name, fn, topology, description, churn)
        return fn

    return _register


def get_protocol(name: str) -> ProtocolSpec:
    try:
        return PROTOCOLS[name]
    except KeyError:
        known = ", ".join(sorted(PROTOCOLS)) or "none registered"
        raise SpecValidationError(f"unknown protocol {name!r} (known: {known})") from None


def protocol_names() -> list[str]:
    return sorted(PROTOCOLS)


def churn_capable_protocols() -> list[str]:
    return sorted(name for name, spec in PROTOCOLS.items() if spec.churn != "none")


# --------------------------------------------------------------------------- #
# adapters: repro.core
# --------------------------------------------------------------------------- #
def _error_summary(estimates: np.ndarray, exact: float) -> dict[str, float]:
    finite = np.isfinite(estimates)
    if not finite.any():
        return {"exact": float(exact), "max_rel_error": float("inf")}
    diffs = np.abs(estimates[finite] - exact)
    err = float(np.max(diffs)) if exact == 0.0 else float(np.max(diffs) / abs(exact))
    return {"exact": float(exact), "max_rel_error": err}


def _churn_degradation(
    ctx: RunContext, metrics: MetricsCollector, estimates: np.ndarray, exact: float
) -> dict[str, Any] | None:
    """Shared degradation section for churn runs (None when churn is off).

    ``survivor_mass_rel_error`` is the worst relative error of a surviving
    node's estimate against the exact aggregate *of the survivors* -- the
    honest success measure once the founding membership no longer exists.
    """
    if not ctx.failure_model.has_churn:
        return None
    finite = np.isfinite(np.asarray(estimates, dtype=float))
    section: dict[str, Any] = {
        "population": float(estimates.size),
        "survivors": float(np.count_nonzero(finite)),
        "survivor_exact": float(exact),
        "survivor_mass_rel_error": _error_summary(estimates, exact)["max_rel_error"],
        "messages_to_dead": float(metrics.total_messages_to_dead),
    }
    return section


@register_protocol("drr", description="Phase I: Distributed Random Ranking forest construction")
def _run_drr_spec(ctx: RunContext, n: int | None = None, probe_budget: int | None = None) -> ProtocolOutput:
    from ..core import run_drr

    if n is None:
        raise SpecValidationError("protocol 'drr' needs 'n'")
    result = run_drr(
        _as_int(n, "'n'"),
        rng=ctx.rng,
        probe_budget=probe_budget,
        failure_model=ctx.failure_model,
        backend=ctx.backend,
    )
    forest = result.forest
    return ProtocolOutput(
        metrics=result.metrics,
        estimates=lambda: forest.depth.astype(float),
        summary=lambda: {
            "trees": float(forest.root_count),
            "max_tree_size": float(forest.max_tree_size),
            "max_tree_height": float(forest.max_tree_height),
        },
        raw=result,
    )


@register_protocol(
    "drr-gossip",
    description="Full DRR-gossip pipeline (Algorithms 7/8) for any supported aggregate",
    churn="crashes",
)
def _run_drr_gossip_spec(
    ctx: RunContext,
    n: int | None = None,
    aggregate: str = "average",
    workload: str = "uniform",
    values: list | None = None,
    query: float | None = None,
    probe_budget: int | None = None,
    gossip_rounds: int | None = None,
    sampling_rounds: int | None = None,
    ave_rounds: int | None = None,
    epsilon: float | None = None,
) -> ProtocolOutput:
    from ..core import Aggregate, DRRGossipConfig, drr_gossip

    vals = ctx.resolve_values(n, workload, values)
    try:
        agg = Aggregate(aggregate)
    except ValueError as exc:
        raise SpecValidationError(
            f"unknown aggregate {aggregate!r} (valid: {', '.join(a.value for a in Aggregate)})"
        ) from exc
    if agg == Aggregate.RANK and query is None:
        # The conventional default query: the input median (a pure function
        # of the values, so the spec stays reproducible without naming it).
        query = float(np.median(vals))
    config = DRRGossipConfig(
        probe_budget=probe_budget,
        gossip_rounds=gossip_rounds,
        sampling_rounds=sampling_rounds,
        ave_rounds=ave_rounds,
        epsilon=epsilon,
        failure_model=ctx.failure_model,
        backend=ctx.backend,
    )
    result = drr_gossip(vals, agg, rng=ctx.rng, config=config, query=query)
    return ProtocolOutput(
        metrics=result.metrics,
        estimates=result.estimates,
        summary={
            "exact": float(result.exact),
            "max_rel_error": float(result.max_relative_error),
            "coverage": float(result.coverage),
            "all_correct": float(result.all_correct),
            "trees": float(result.drr.forest.root_count),
        },
        raw=result,
        degradation=_churn_degradation(ctx, result.metrics, result.estimates, result.exact),
    )


@register_protocol("local-drr", topology="graph", description="Local-DRR forest construction on a sparse graph")
def _run_local_drr_spec(ctx: RunContext) -> ProtocolOutput:
    from ..core import run_local_drr

    result = run_local_drr(
        ctx.topology,
        rng=ctx.rng,
        failure_model=ctx.failure_model,
        backend=ctx.backend,
    )
    forest = result.forest
    topology = ctx.topology
    return ProtocolOutput(
        metrics=result.metrics,
        estimates=lambda: forest.depth.astype(float),
        summary=lambda: {
            "trees": float(forest.root_count),
            "max_tree_size": float(forest.max_tree_size),
            "max_tree_height": float(forest.max_tree_height),
            "expected_trees": float(topology.expected_local_drr_trees()),
        },
        raw=result,
    )


# --------------------------------------------------------------------------- #
# adapters: repro.baselines
# --------------------------------------------------------------------------- #
@register_protocol(
    "push-sum",
    description="Kempe et al. push-sum (uniform gossip Average)",
    churn="full",
)
def _run_push_sum_spec(
    ctx: RunContext,
    n: int | None = None,
    workload: str = "uniform",
    values: list | None = None,
    rounds: int | None = None,
    epsilon: float | None = None,
) -> ProtocolOutput:
    from ..baselines import push_sum

    vals = ctx.resolve_values(n, workload, values)
    result = push_sum(
        vals, rng=ctx.rng, rounds=rounds, epsilon=epsilon,
        failure_model=ctx.failure_model, backend=ctx.backend,
    )
    return ProtocolOutput(
        metrics=result.metrics,
        estimates=result.estimates,
        summary=_error_summary(result.estimates, result.exact),
        raw=result,
        degradation=_churn_degradation(ctx, result.metrics, result.estimates, result.exact),
    )


@register_protocol(
    "push-max",
    description="Address-oblivious push-max (uniform gossip Max)",
    churn="full",
)
def _run_push_max_spec(
    ctx: RunContext,
    n: int | None = None,
    workload: str = "uniform",
    values: list | None = None,
    rounds: int | None = None,
    stop_when_converged: bool = False,
) -> ProtocolOutput:
    from ..baselines import push_max

    vals = ctx.resolve_values(n, workload, values)
    result = push_max(
        vals, rng=ctx.rng, rounds=rounds, failure_model=ctx.failure_model,
        stop_when_converged=stop_when_converged, backend=ctx.backend,
    )
    return ProtocolOutput(
        metrics=result.metrics,
        estimates=result.estimates,
        summary=_error_summary(result.estimates, result.exact),
        raw=result,
        degradation=_churn_degradation(ctx, result.metrics, result.estimates, result.exact),
    )


@register_protocol(
    "epoch-gossip-ave",
    topology="optional-graph",
    description="Epoch-restarted push-pull averaging for dynamic membership",
    churn="full",
)
def _run_epoch_gossip_spec(
    ctx: RunContext,
    n: int | None = None,
    workload: str = "uniform",
    values: list | None = None,
    epochs: int = 3,
    epoch_rounds: int | None = None,
) -> ProtocolOutput:
    from ..baselines import epoch_gossip_ave

    size = ctx.topology.n if ctx.topology is not None else n
    vals = ctx.resolve_values(size, workload, values)
    try:
        result = epoch_gossip_ave(
            vals, rng=ctx.rng, epochs=_as_int(epochs, "'epochs'"),
            epoch_rounds=None if epoch_rounds is None else _as_int(epoch_rounds, "'epoch_rounds'"),
            failure_model=ctx.failure_model, topology=ctx.topology,
            backend=ctx.backend,
        )
    except ValueError as exc:
        raise SpecValidationError(str(exc)) from exc
    summary = _error_summary(result.estimates, result.exact)
    summary["epochs"] = float(result.epochs)
    summary["epoch_rounds"] = float(result.epoch_rounds)
    degradation = _churn_degradation(ctx, result.metrics, result.estimates, result.exact)
    if degradation is not None:
        degradation["epoch_errors"] = [float(e) for e in result.epoch_errors]
        degradation["epoch_survivors"] = [float(s) for s in result.epoch_survivors]
    return ProtocolOutput(
        metrics=result.metrics,
        estimates=result.estimates,
        summary=summary,
        raw=result,
        degradation=degradation,
    )


@register_protocol("efficient-gossip", description="Kashyap-style cluster-then-gossip baseline")
def _run_efficient_gossip_spec(
    ctx: RunContext,
    n: int | None = None,
    aggregate: str = "average",
    workload: str = "uniform",
    values: list | None = None,
    leader_probability: float | None = None,
) -> ProtocolOutput:
    from ..baselines import efficient_gossip
    from ..core import Aggregate

    vals = ctx.resolve_values(n, workload, values)
    try:
        agg = Aggregate(aggregate)
    except ValueError as exc:
        raise SpecValidationError(f"unknown aggregate {aggregate!r}") from exc
    result = efficient_gossip(
        vals, agg, rng=ctx.rng, failure_model=ctx.failure_model,
        leader_probability=leader_probability, backend=ctx.backend,
    )
    summary = _error_summary(result.estimates, result.exact)
    summary["groups"] = float(result.group_count)
    return ProtocolOutput(
        metrics=result.metrics, estimates=result.estimates, summary=summary, raw=result
    )


@register_protocol("push-rumor", description="Plain push rumor spreading")
def _run_push_rumor_spec(
    ctx: RunContext, n: int | None = None, source: int = 0, rounds: int | None = None
) -> ProtocolOutput:
    from ..baselines import push_rumor

    if n is None:
        raise SpecValidationError("protocol 'push-rumor' needs 'n'")
    result = push_rumor(
        _as_int(n, "'n'"), source=source, rng=ctx.rng, rounds=rounds,
        failure_model=ctx.failure_model, backend=ctx.backend,
    )
    return ProtocolOutput(
        metrics=result.metrics,
        estimates=result.informed.astype(float),
        summary={"informed_fraction": float(result.informed_fraction)},
        raw=result,
    )


@register_protocol("push-pull-rumor", description="Karp et al. push-pull rumor spreading with cooldown")
def _run_push_pull_rumor_spec(
    ctx: RunContext,
    n: int | None = None,
    source: int = 0,
    cooldown: int | None = None,
    max_rounds: int | None = None,
) -> ProtocolOutput:
    from ..baselines import push_pull_rumor

    if n is None:
        raise SpecValidationError("protocol 'push-pull-rumor' needs 'n'")
    result = push_pull_rumor(
        _as_int(n, "'n'"), source=source, rng=ctx.rng, cooldown=cooldown,
        max_rounds=max_rounds, failure_model=ctx.failure_model, backend=ctx.backend,
    )
    return ProtocolOutput(
        metrics=result.metrics,
        estimates=result.informed.astype(float),
        summary={"informed_fraction": float(result.informed_fraction)},
        raw=result,
    )


@register_protocol("flood-max", topology="graph", description="Max by repeated neighbourhood flooding")
def _run_flood_max_spec(
    ctx: RunContext,
    workload: str = "uniform",
    values: list | None = None,
    max_rounds: int | None = None,
) -> ProtocolOutput:
    from ..baselines import flood_max

    vals = ctx.resolve_values(ctx.topology.n, workload, values)
    result = flood_max(
        ctx.topology, vals, rng=ctx.rng, failure_model=ctx.failure_model,
        max_rounds=max_rounds, backend=ctx.backend,
    )
    return ProtocolOutput(
        metrics=result.metrics,
        estimates=result.estimates,
        summary=_error_summary(result.estimates, result.exact),
        raw=result,
    )


# --------------------------------------------------------------------------- #
# adapters: topology workloads
# --------------------------------------------------------------------------- #
@register_protocol("chord-lookups", topology="chord", description="Batched Chord identifier lookups (one hop per round)")
def _run_chord_lookups_spec(ctx: RunContext, lookups: int | None = None) -> ProtocolOutput:
    from ..substrate import run_chord_lookups

    chord = ctx.topology
    count = _as_int(lookups, "'lookups'") if lookups is not None else chord.n
    if count < 1:
        raise SpecValidationError("'lookups' must be positive")
    sources = ctx.rng.integers(0, chord.n, size=count)
    identifiers = ctx.rng.integers(0, chord.ring_size, size=count)
    batch = run_chord_lookups(
        chord, sources, identifiers,
        failure_model=ctx.failure_model, rng=ctx.rng, backend=ctx.backend,
    )
    return ProtocolOutput(
        metrics=batch.metrics,
        estimates=batch.owners.astype(float),
        summary={
            "completion_fraction": float(batch.completion_fraction),
            "mean_hops": float(batch.hops.mean()) if batch.hops.size else 0.0,
        },
        raw=batch,
    )
