"""The single entry point: ``repro.run(spec) -> RunResult``.

Dispatch order is a fixed, documented contract (it is what makes a spec's
seed reproduce a run exactly):

1. ``rng = make_rng(spec.seed)`` — one generator for the whole run.
2. The topology (if any) is built from that generator, consuming draws.
3. Value-carrying protocols draw their workload values next (adapters do
   this through :meth:`RunContext.resolve_values`), unless the spec ships
   explicit ``values``.
4. The protocol runs on the requested substrate backend under the spec's
   failure model.

This mirrors the call sequence the experiment drivers always used
(`topo = make_graph(...); values = make_values(...); run_X(..., rng=rng)`
with one shared generator), so driver results are preserved bit-for-bit
when they are expressed as specs.
"""

from __future__ import annotations

import contextlib
import time
from typing import Iterable, Mapping

from ..observability.telemetry import NullTelemetry, Telemetry, use_telemetry
from ..simulator.rng import make_rng
from ..substrate import get_kernel
from .protocols import RunContext, get_protocol
from .result import RunResult
from .spec import RunSpec

__all__ = ["run", "run_many"]


def _backend_context(spec: RunSpec):
    """Apply the spec's backend options (e.g. sharded shard count) for the run."""
    if not spec.backend_options:
        return contextlib.nullcontext()
    kernel = get_kernel(spec.backend)
    return kernel.options(**spec.backend_options)


def run(spec: RunSpec | Mapping, *, telemetry: NullTelemetry | None = None) -> RunResult:
    """Execute one fully-described run and return the uniform envelope.

    ``spec`` may be a :class:`RunSpec` or a plain mapping (e.g. a parsed
    JSON document), which is validated on the way in.

    ``telemetry`` optionally supplies the recorder to use (the CLI passes
    one so it can also stream a heartbeat from it); by default a fresh
    :class:`~repro.observability.Telemetry` is created when
    ``spec.telemetry`` is set and nothing is recorded otherwise.  The
    result carries the document as ``RunResult.telemetry``.
    """
    if not isinstance(spec, RunSpec):
        spec = RunSpec.from_dict(spec)
    protocol = get_protocol(spec.protocol)
    tel = telemetry if telemetry is not None else (Telemetry() if spec.telemetry else None)
    start = time.perf_counter()
    rng = make_rng(spec.seed)
    topology = spec.topology.build(rng) if spec.topology is not None else None
    ctx = RunContext(
        rng=rng,
        failure_model=spec.failures,
        backend=spec.backend,
        topology=topology,
    )
    with _backend_context(spec):
        if tel is not None and tel.enabled:
            with use_telemetry(tel):
                output = protocol.run(ctx, spec.params)
            tel.finish()
        else:
            output = protocol.run(ctx, spec.params)
    wall_time = time.perf_counter() - start
    metrics = output.metrics
    return RunResult(
        spec=spec,
        rounds=metrics.total_rounds,
        messages=metrics.total_messages,
        messages_lost=metrics.total_messages_lost,
        messages_by_kind={str(k): int(v) for k, v in metrics.messages_by_kind().items()},
        messages_by_phase=metrics.messages_by_phase(),
        rounds_by_phase=metrics.rounds_by_phase(),
        estimates=output.estimates,
        summary=output.summary,
        wall_time_s=wall_time,
        raw=output.raw,
        telemetry=tel.as_dict() if tel is not None and tel.enabled else None,
        degradation=output.degradation,
    )


def run_many(specs: Iterable[RunSpec | Mapping]) -> list[RunResult]:
    """Execute several specs sequentially (each is independent by construction).

    Parallel fan-out belongs to the orchestration layer
    (:class:`~repro.orchestration.SweepRunner`), whose workers accept the
    same serialised specs; this helper is for scripts and tests.
    """
    return [run(spec) for spec in specs]
