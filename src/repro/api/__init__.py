"""Declarative run API: serializable specs, one dispatch entry point.

The three-line flow::

    import repro
    spec = repro.RunSpec(protocol="drr-gossip", params={"n": 4096}, seed=7)
    result = repro.run(spec)

A :class:`RunSpec` carries everything a run needs — protocol name and
parameters, an optional :class:`TopologySpec`, the
:class:`~repro.simulator.failures.FailureModel` (the spec-level
``FailureSpec``), the substrate backend, and the seed — and round-trips
through JSON/TOML, so the same value that configures a local call can be
stored in the result database or shipped to a worker on another host.
:func:`run` validates the spec against the protocol registry and returns
the uniform :class:`RunResult` envelope.
"""

from ..simulator.failures import FailureModel as FailureSpec  # spec-level alias
from .dispatch import run, run_many
from .errors import SpecValidationError
from .protocols import (
    PROTOCOLS,
    ProtocolOutput,
    ProtocolParam,
    ProtocolSpec,
    RunContext,
    get_protocol,
    protocol_names,
    register_protocol,
)
from .result import RunResult
from .spec import (
    TOPOLOGY_FAMILIES,
    RunSpec,
    TopologySpec,
    load_spec,
    load_specs,
    parse_spec_document,
    read_spec_document,
)

__all__ = [
    "FailureSpec",
    "PROTOCOLS",
    "ProtocolOutput",
    "ProtocolParam",
    "ProtocolSpec",
    "RunContext",
    "RunResult",
    "RunSpec",
    "SpecValidationError",
    "TOPOLOGY_FAMILIES",
    "TopologySpec",
    "get_protocol",
    "load_spec",
    "load_specs",
    "parse_spec_document",
    "protocol_names",
    "read_spec_document",
    "register_protocol",
    "run",
    "run_many",
]
