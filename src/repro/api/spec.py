"""Serializable run descriptions: :class:`TopologySpec` and :class:`RunSpec`.

A :class:`RunSpec` is the *complete* description of one protocol run:
protocol name, protocol parameters, an optional topology, the failure
model, the substrate backend, and the seed.  It is a frozen value object
that round-trips through JSON (and loads from TOML), so a run can be
stored, diffed, shipped to a worker on another host, and replayed
bit-for-bit — ``repro.run(RunSpec.from_json(spec.to_json()))`` produces
the same rounds, message counts, and estimates as ``repro.run(spec)``.

Validation happens at construction time: protocol names and parameters
are checked against the protocol registry (schemas derived from the
adapter signatures, see :mod:`repro.api.protocols`), so a malformed spec
fails when it is built, not minutes into a sweep.
"""

from __future__ import annotations

import dataclasses
import json
import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from ..serialization import canonical_json, canonical_value, stable_digest
from ..simulator.failures import FailureModel
from ..substrate import DEFAULT_BACKEND, normalize_backend
from .errors import SpecValidationError

__all__ = [
    "TopologySpec",
    "RunSpec",
    "load_spec",
    "load_specs",
    "parse_spec_document",
    "read_spec_document",
    "DEFAULT_SPEC_SEED",
]

#: Seed used when a spec document does not name one (kept distinct from the
#: simulator's DEFAULT_SEED so "forgot the seed" is greppable in stores).
DEFAULT_SPEC_SEED = 1

#: Topology families a spec may name: the graph generators of
#: :data:`repro.topology.GRAPH_FAMILIES`, a Chord overlay, or an explicit
#: edge list (the serialised form of a concrete :class:`Topology`).
_GENERATED_FAMILIES = (
    "complete",
    "ring",
    "grid",
    "hypercube",
    "regular4",
    "regular8",
    "erdos-renyi",
)
TOPOLOGY_FAMILIES = _GENERATED_FAMILIES + ("chord", "explicit")


def _freeze(value: Any) -> Any:
    """Recursively convert mappings/sequences to hashable tuples."""
    if isinstance(value, Mapping):
        return tuple(sorted((str(k), _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _coerce_int(value: Any, what: str) -> int:
    """``int()`` with spec-shaped error reporting (specs are hand-written)."""
    try:
        return int(value)
    except (TypeError, ValueError) as exc:
        raise SpecValidationError(f"{what} must be an integer, got {value!r}") from exc


@dataclass(frozen=True)
class TopologySpec:
    """Declarative description of the network a protocol runs over.

    ``family`` is a generator name (``ring``, ``grid``, ``regular4``, ...),
    ``chord`` for a Chord overlay, or ``explicit`` for a concrete edge
    list (``params["edges"]``, as produced by :meth:`Topology.to_spec`).
    Generated families draw their randomness from the run's generator, in
    order, before the protocol starts — exactly the convention the
    experiment drivers always used (``topo = make_graph(...); run(...)``
    with one shared generator), so spec-driven runs reproduce them.
    """

    family: str
    n: int
    #: family-specific extras (``m`` for chord, ``edges``/``name`` for
    #: explicit), stored as a sorted tuple of pairs so the spec is hashable.
    params: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.family not in TOPOLOGY_FAMILIES:
            raise SpecValidationError(
                f"unknown topology family {self.family!r} "
                f"(valid: {', '.join(TOPOLOGY_FAMILIES)})"
            )
        n = _coerce_int(self.n, "topology 'n'")
        if n < 1:
            raise SpecValidationError(f"topology n must be positive, got {n}")
        if self.family == "chord" and n < 2:
            raise SpecValidationError("a chord topology needs n >= 2")
        object.__setattr__(self, "n", n)
        params = self.params
        if isinstance(params, Mapping):
            params = _freeze(params)
        elif not isinstance(params, tuple):
            raise SpecValidationError("topology params must be a mapping")
        else:
            params = _freeze(dict(params))
        for key, _ in params:
            if self.family == "explicit":
                if key not in ("edges", "name"):
                    raise SpecValidationError(
                        f"explicit topology accepts only 'edges'/'name', got {key!r}"
                    )
            elif self.family == "chord":
                if key != "m":
                    raise SpecValidationError(f"chord topology accepts only 'm', got {key!r}")
            else:
                raise SpecValidationError(
                    f"topology family {self.family!r} takes no extra parameters, got {key!r}"
                )
        if self.family == "explicit" and "edges" not in dict(params):
            raise SpecValidationError("explicit topology needs an 'edges' list")
        object.__setattr__(self, "params", params)

    @property
    def param_dict(self) -> dict[str, Any]:
        return {k: v for k, v in self.params}

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"family": self.family, "n": self.n}
        doc.update(canonical_value(self.param_dict))
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "TopologySpec":
        if not isinstance(doc, Mapping):
            raise SpecValidationError(f"topology must be a table/object, got {doc!r}")
        if "family" not in doc or "n" not in doc:
            raise SpecValidationError("topology needs 'family' and 'n'")
        extras = {k: v for k, v in doc.items() if k not in ("family", "n")}
        return cls(
            family=str(doc["family"]),
            n=_coerce_int(doc["n"], "topology 'n'"),
            params=extras,
        )

    # ------------------------------------------------------------------ #
    # instantiation
    # ------------------------------------------------------------------ #
    def build(self, rng):
        """Materialise the topology, drawing any needed randomness from ``rng``.

        Returns a :class:`~repro.topology.Topology` for graph families and a
        :class:`~repro.topology.ChordNetwork` for ``family == "chord"``.
        """
        from ..topology import ChordNetwork, Topology, make_graph

        extras = self.param_dict
        if self.family == "chord":
            m = extras.get("m")
            return ChordNetwork(self.n, rng, m=int(m) if m is not None else None)
        if self.family == "explicit":
            return Topology.from_spec({"family": "explicit", "n": self.n, **extras})
        return make_graph(self.family, self.n, rng)


#: Options each backend accepts in ``RunSpec.backend_options`` (everything
#: is coerced to int; unknown keys and options for backends that take none
#: are rejected at spec-construction time).
BACKEND_OPTION_KEYS: dict[str, frozenset[str]] = {
    "sharded": frozenset({"shards", "min_batch"}),
    "compiled": frozenset({"shards", "min_batch"}),
}


def _validate_backend_options(backend: str, options: Any) -> dict[str, int]:
    if options is None:
        return {}
    if not isinstance(options, Mapping):
        raise SpecValidationError(
            f"'backend_options' must be a table/object, got {options!r}"
        )
    options = dict(options)
    if not options:
        return {}
    allowed = BACKEND_OPTION_KEYS.get(backend, frozenset())
    unknown = set(options) - allowed
    if unknown:
        if not allowed:
            raise SpecValidationError(
                f"backend {backend!r} takes no backend_options, got {sorted(options)}"
            )
        raise SpecValidationError(
            f"backend {backend!r} does not accept backend_options "
            f"{sorted(unknown)} (valid: {sorted(allowed)})"
        )
    normalised = {
        key: _coerce_int(value, f"backend option {key!r}") for key, value in options.items()
    }
    if normalised.get("shards", 1) < 1:
        raise SpecValidationError(
            f"backend option 'shards' must be >= 1, got {normalised['shards']}"
        )
    if normalised.get("min_batch", 0) < 0:
        raise SpecValidationError(
            f"backend option 'min_batch' must be >= 0, got {normalised['min_batch']}"
        )
    return normalised


@dataclass(frozen=True)
class RunSpec:
    """One protocol run, fully described by serialisable values.

    ``backend_options`` carries backend-specific execution knobs (today:
    ``{"shards": P, "min_batch": B}`` for the ``sharded`` backend).  They
    are part of the spec — a sweep cell pins them, a remote worker applies
    them — but an *empty* options table serialises to nothing, so specs
    written before the field existed keep their hashes (store resume is
    unaffected).

    Examples
    --------
    >>> import repro
    >>> spec = repro.RunSpec(protocol="drr", params={"n": 1024}, seed=7)
    >>> result = repro.run(spec)
    >>> repro.run(RunSpec.from_json(spec.to_json())).same_outcome(result)
    True
    """

    protocol: str
    params: Mapping[str, Any] = field(default_factory=dict)
    topology: TopologySpec | None = None
    failures: FailureModel = field(default_factory=FailureModel)
    backend: str = DEFAULT_BACKEND
    seed: int = DEFAULT_SPEC_SEED
    backend_options: Mapping[str, int] = field(default_factory=dict)
    #: Record telemetry for this run (``RunResult.telemetry``).  An
    #: execution knob, not an identity: serialised only when set (so the
    #: toggle travels to sweep workers) but excluded from
    #: :meth:`spec_hash` / :meth:`param_hash` — store rows, resume, and
    #: ``same_outcome`` never see it.
    telemetry: bool = False

    def __post_init__(self) -> None:
        from .protocols import get_protocol  # late: protocols import core/baselines

        try:
            object.__setattr__(self, "backend", normalize_backend(self.backend))
        except Exception as exc:
            raise SpecValidationError(str(exc)) from exc
        object.__setattr__(self, "seed", _coerce_int(self.seed, "'seed'"))
        object.__setattr__(
            self, "backend_options", _validate_backend_options(self.backend, self.backend_options)
        )
        object.__setattr__(self, "telemetry", bool(self.telemetry))
        if isinstance(self.topology, Mapping):
            object.__setattr__(self, "topology", TopologySpec.from_dict(self.topology))
        if isinstance(self.failures, Mapping):
            try:
                object.__setattr__(self, "failures", FailureModel.from_spec(self.failures))
            except Exception as exc:
                raise SpecValidationError(f"invalid 'failures' section: {exc}") from exc
        spec = get_protocol(self.protocol)  # raises SpecValidationError when unknown
        object.__setattr__(self, "params", spec.validate_params(self.params))
        spec.validate_topology(self.topology)
        spec.validate_failures(self.failures)

    def __hash__(self) -> int:
        # The generated frozen-dataclass hash would choke on the params dict;
        # hash the frozen view instead so specs work as set/dict keys (equal
        # specs hash equal because validate_params normalises the values).
        return hash(
            (
                self.protocol,
                _freeze(self.params),
                self.topology,
                self.failures,
                self.backend,
                self.seed,
                _freeze(dict(self.backend_options)),
                self.telemetry,
            )
        )

    # ------------------------------------------------------------------ #
    # convenience
    # ------------------------------------------------------------------ #
    def replace(self, **changes: Any) -> "RunSpec":
        """A copy with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    def with_seed(self, seed: int) -> "RunSpec":
        return self.replace(seed=seed)

    def with_telemetry(self, enabled: bool = True) -> "RunSpec":
        return self.replace(telemetry=bool(enabled))

    def with_backend(self, backend: str) -> "RunSpec":
        """A copy on ``backend``, keeping only the options that backend takes.

        (Silently dropping now-inapplicable options is what a sweep-wide
        ``--backend`` override wants: a spec file pinned to
        ``sharded[shards=4]`` re-targeted at ``engine`` should run, not
        fail validation.)
        """
        name = normalize_backend(backend)
        allowed = BACKEND_OPTION_KEYS.get(name, frozenset())
        options = {k: v for k, v in dict(self.backend_options).items() if k in allowed}
        return self.replace(backend=name, backend_options=options)

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "protocol": self.protocol,
            "params": canonical_value(dict(self.params)),
            "failures": self.failures.to_spec(),
            "backend": self.backend,
            "seed": self.seed,
        }
        if self.backend_options:
            # Only serialised when non-empty so pre-existing specs (and the
            # store rows hashed from them) keep their identities.
            doc["backend_options"] = dict(self.backend_options)
        if self.telemetry:
            # Serialised so the toggle reaches sweep workers, but popped
            # again by spec_hash/param_hash: telemetry is never identity.
            doc["telemetry"] = True
        if self.topology is not None:
            doc["topology"] = self.topology.to_dict()
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "RunSpec":
        if not isinstance(doc, Mapping):
            raise SpecValidationError(f"a run spec must be a table/object, got {doc!r}")
        if "protocol" not in doc:
            raise SpecValidationError("a run spec needs a 'protocol' name")
        known = {
            "protocol",
            "params",
            "topology",
            "failures",
            "backend",
            "seed",
            "backend_options",
            "telemetry",
        }
        unknown = set(doc) - known
        if unknown:
            raise SpecValidationError(
                f"run spec has unknown keys {sorted(unknown)} (valid: {sorted(known)})"
            )
        params = doc.get("params", {})
        if not isinstance(params, Mapping):
            raise SpecValidationError("'params' must be a table/object")
        return cls(
            protocol=str(doc["protocol"]),
            params=dict(params),
            topology=doc.get("topology"),
            failures=doc.get("failures", FailureModel()),
            backend=str(doc.get("backend", DEFAULT_BACKEND)),
            seed=doc.get("seed", DEFAULT_SPEC_SEED),
            backend_options=doc.get("backend_options", {}),
            telemetry=bool(doc.get("telemetry", False)),
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecValidationError(f"run spec is not valid JSON: {exc}") from exc
        return cls.from_dict(doc)

    def canonical_json(self) -> str:
        """Canonical serialisation (sorted keys, normalised values).

        The transport form (sweep workers rebuild the spec from it); it
        keeps the non-identity telemetry toggle, which :meth:`spec_hash` /
        :meth:`param_hash` pop before digesting.
        """
        return canonical_json(self.to_dict())

    def spec_hash(self) -> str:
        """Stable 16-hex-char identity of this spec (seed included).

        The telemetry toggle is popped first: recording telemetry does not
        change what a run *is*, so enabling it never forks a store identity.
        """
        doc = self.to_dict()
        doc.pop("telemetry", None)
        return stable_digest(doc)

    def param_hash(self) -> str:
        """Stable hash of everything but the seed (the sweep-cell identity)."""
        doc = self.to_dict()
        doc.pop("seed", None)
        doc.pop("telemetry", None)
        return stable_digest(doc)

    def describe(self) -> str:
        binding = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        topo = f" on {self.topology.family}(n={self.topology.n})" if self.topology else ""
        options = ""
        if self.backend_options:
            options = "[" + ",".join(f"{k}={v}" for k, v in sorted(self.backend_options.items())) + "]"
        telemetry = " +telemetry" if self.telemetry else ""
        return (
            f"{self.protocol}({binding}){topo} "
            f"backend={self.backend}{options} seed={self.seed}{telemetry}"
        )


# --------------------------------------------------------------------------- #
# spec files
# --------------------------------------------------------------------------- #
def _parse_spec_document(data: Any, origin: str) -> list[RunSpec]:
    """Extract one or more run specs from a parsed TOML/JSON document.

    Accepted shapes: a bare spec object, ``{"run": {...}}``, a TOML
    ``[[run]]`` array of tables, ``{"runs": [...]}``, or a bare JSON list.
    """
    if isinstance(data, Mapping) and ("run" in data or "runs" in data):
        extra = set(data) - {"run", "runs"}
        if extra:
            raise SpecValidationError(
                f"{origin}: unknown top-level keys {sorted(extra)} next to 'run(s)'"
            )
        data = data.get("run", data.get("runs"))
    if isinstance(data, Mapping):
        entries: list[Any] = [data]
    elif isinstance(data, list):
        entries = data
    else:
        raise SpecValidationError(f"{origin}: expected a run spec object or list, got {type(data).__name__}")
    if not entries:
        raise SpecValidationError(f"{origin}: spec file defines no runs")
    specs = []
    for index, entry in enumerate(entries):
        try:
            specs.append(RunSpec.from_dict(entry))
        except SpecValidationError as exc:
            where = origin if len(entries) == 1 else f"{origin} (run #{index + 1})"
            raise SpecValidationError(f"{where}: {exc}") from exc
    return specs


def read_spec_document(path: str | Path):
    """Parse a ``.toml``/``.json`` file into its raw document.

    Shared by :func:`load_specs` and the CLI's ``spec`` tooling, so every
    consumer sees identical format support and decode errors (and a file is
    never parsed twice to be classified and then validated).
    """
    path = Path(path)
    if path.suffix.lower() == ".toml":
        with path.open("rb") as handle:
            try:
                return tomllib.load(handle)
            except tomllib.TOMLDecodeError as exc:
                raise SpecValidationError(f"{path}: invalid TOML: {exc}") from exc
    if path.suffix.lower() == ".json":
        try:
            return json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise SpecValidationError(f"{path}: invalid JSON: {exc}") from exc
    raise SpecValidationError(
        f"unsupported spec file type {path.suffix!r} (use .toml or .json)"
    )


def parse_spec_document(data, origin: str) -> list[RunSpec]:
    """Public alias of the document-shape parser (see the module docstring)."""
    return _parse_spec_document(data, origin)


def load_specs(path: str | Path) -> list[RunSpec]:
    """Load every run spec from a ``.toml`` or ``.json`` spec file."""
    return _parse_spec_document(read_spec_document(path), str(path))


def load_spec(path: str | Path) -> RunSpec:
    """Load a spec file that must contain exactly one run spec."""
    specs = load_specs(path)
    if len(specs) != 1:
        raise SpecValidationError(
            f"{path}: expected exactly one run spec, found {len(specs)} "
            "(use load_specs / `drr-gossip sweep --spec` for multi-run files)"
        )
    return specs[0]
