"""Errors raised by the declarative run API."""

from __future__ import annotations

__all__ = ["SpecValidationError"]


class SpecValidationError(ValueError):
    """A :class:`~repro.api.RunSpec` (or a fragment of one) is invalid.

    Raised for unknown protocols, unknown or extra protocol parameters,
    missing/forbidden topology sections, and malformed spec documents.
    The message always names the offending field and, where applicable,
    the set of valid alternatives — specs are written by hand in TOML/JSON
    files, so the error text is part of the user interface.
    """
