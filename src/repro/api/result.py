"""The uniform result envelope returned by :func:`repro.run`.

Whatever the protocol, a run's outcome is reported in one shape: the round
count, the message accounting (total / lost / per kind / per phase), the
per-node estimate vector, a protocol-specific scalar summary, the wall
time, and an echo of the spec that produced it.  The envelope serialises
to JSON (minus the in-memory ``raw`` protocol result), so a worker on
another host can return a :class:`RunResult` as a plain string and the
parent can compare it field-for-field against a local replay.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Mapping

import numpy as np

from .spec import RunSpec

__all__ = ["RunResult"]


class RunResult:
    """Outcome of one spec-dispatched protocol run.

    Attributes
    ----------
    spec:
        The spec that produced this result (validated, defaults resolved).
    rounds / messages / messages_lost / messages_by_kind /
    messages_by_phase / rounds_by_phase:
        The complete round and message accounting of the run.
    estimates:
        Per-node (or per-route) estimates; NaN marks nodes without an
        answer.  May be handed in as a zero-argument callable, which is
        evaluated (once) on first access — derived statistics must not tax
        callers that only read the counters, which is what keeps the
        dispatch layer's overhead over a direct ``run_X`` call negligible.
    summary:
        Protocol-specific scalars (exact value, max_rel_error, coverage,
        ...); same lazy-callable convention as ``estimates``.
    wall_time_s:
        Wall-clock duration of the dispatch (excluded from equality).
    raw:
        The underlying protocol result object; None after deserialisation.
    telemetry:
        The run's telemetry document (phase/primitive timing spans, peak
        RSS, counters, sharded-pool utilization), or None when telemetry
        was disabled.  An observation about the execution, not part of the
        outcome: excluded from :meth:`same_outcome` like ``wall_time_s``.
    degradation:
        Fault-degradation section for churn runs (survivor counts, the
        survivor-relative error, messages wasted on dead recipients, and —
        for epoch-restarted protocols — the per-epoch error curve), or
        None when the spec's failure model has no mid-run churn.  Values
        may legitimately be NaN (e.g. the error curve of an epoch whose
        survivors all hold NaN), so the section is excluded from
        :meth:`same_outcome`; the churn equivalence tests compare it
        explicitly instead.
    """

    __slots__ = (
        "spec",
        "rounds",
        "messages",
        "messages_lost",
        "messages_by_kind",
        "messages_by_phase",
        "rounds_by_phase",
        "_estimates",
        "_summary",
        "wall_time_s",
        "raw",
        "telemetry",
        "degradation",
    )

    def __init__(
        self,
        spec: RunSpec,
        rounds: int,
        messages: int,
        messages_lost: int,
        messages_by_kind: dict[str, int],
        messages_by_phase: dict[str, int],
        rounds_by_phase: dict[str, int],
        estimates: np.ndarray | Callable[[], np.ndarray] | None,
        summary: dict[str, float] | Callable[[], dict[str, float]],
        wall_time_s: float,
        raw: Any = None,
        telemetry: Mapping[str, Any] | None = None,
        degradation: Mapping[str, Any] | None = None,
    ) -> None:
        self.spec = spec
        self.rounds = int(rounds)
        self.messages = int(messages)
        self.messages_lost = int(messages_lost)
        self.messages_by_kind = dict(messages_by_kind)
        self.messages_by_phase = dict(messages_by_phase)
        self.rounds_by_phase = dict(rounds_by_phase)
        self._estimates = estimates
        self._summary = summary
        self.wall_time_s = float(wall_time_s)
        self.raw = raw
        self.telemetry = dict(telemetry) if telemetry is not None else None
        self.degradation = dict(degradation) if degradation is not None else None

    @property
    def estimates(self) -> np.ndarray | None:
        if callable(self._estimates):
            self._estimates = np.asarray(self._estimates(), dtype=float)
        return self._estimates

    @property
    def summary(self) -> dict[str, float]:
        if callable(self._summary):
            self._summary = {str(k): float(v) for k, v in self._summary().items()}
        return self._summary

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunResult(protocol={self.protocol!r}, backend={self.backend!r}, "
            f"seed={self.seed}, rounds={self.rounds}, messages={self.messages})"
        )

    @property
    def protocol(self) -> str:
        return self.spec.protocol

    @property
    def backend(self) -> str:
        return self.spec.backend

    @property
    def seed(self) -> int:
        return self.spec.seed

    # ------------------------------------------------------------------ #
    # comparison
    # ------------------------------------------------------------------ #
    def same_outcome(self, other: "RunResult") -> bool:
        """True when two runs produced *identical* results.

        Compares rounds, every message counter (total, lost, per kind, per
        phase), the summary scalars, and the estimate vectors element-wise
        (NaN == NaN); wall time and the ``raw`` object are excluded.  This
        is the equality the serialisation round-trip guarantee is stated
        in.
        """
        if (
            self.rounds != other.rounds
            or self.messages != other.messages
            or self.messages_lost != other.messages_lost
            or dict(self.messages_by_kind) != dict(other.messages_by_kind)
            or dict(self.messages_by_phase) != dict(other.messages_by_phase)
            or dict(self.rounds_by_phase) != dict(other.rounds_by_phase)
            or dict(self.summary) != dict(other.summary)
        ):
            return False
        if (self.estimates is None) != (other.estimates is None):
            return False
        if self.estimates is None:
            return True
        return bool(
            np.array_equal(
                np.asarray(self.estimates, dtype=float),
                np.asarray(other.estimates, dtype=float),
                equal_nan=True,
            )
        )

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "rounds": int(self.rounds),
            "messages": int(self.messages),
            "messages_lost": int(self.messages_lost),
            "messages_by_kind": {str(k): int(v) for k, v in self.messages_by_kind.items()},
            "messages_by_phase": {str(k): int(v) for k, v in self.messages_by_phase.items()},
            "rounds_by_phase": {str(k): int(v) for k, v in self.rounds_by_phase.items()},
            "estimates": None if self.estimates is None else [float(v) for v in np.asarray(self.estimates)],
            "summary": {str(k): float(v) for k, v in self.summary.items()},
            "wall_time_s": float(self.wall_time_s),
            **({"telemetry": self.telemetry} if self.telemetry is not None else {}),
            **({"degradation": self.degradation} if self.degradation is not None else {}),
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "RunResult":
        estimates = doc.get("estimates")
        return cls(
            spec=RunSpec.from_dict(doc["spec"]),
            rounds=int(doc["rounds"]),
            messages=int(doc["messages"]),
            messages_lost=int(doc.get("messages_lost", 0)),
            messages_by_kind=dict(doc.get("messages_by_kind", {})),
            messages_by_phase=dict(doc.get("messages_by_phase", {})),
            rounds_by_phase=dict(doc.get("rounds_by_phase", {})),
            estimates=None if estimates is None else np.asarray(estimates, dtype=float),
            summary={str(k): float(v) for k, v in dict(doc.get("summary", {})).items()},
            wall_time_s=float(doc.get("wall_time_s", 0.0)),
            telemetry=doc.get("telemetry"),
            degradation=doc.get("degradation"),
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------ #
    # integration
    # ------------------------------------------------------------------ #
    def to_experiment_result(self):
        """Adapt to the harness/store row shape (one row per run).

        This is what lets protocol specs flow through the same SQLite
        result store and report writers as the registered experiments.
        """
        from ..harness.experiments import ExperimentResult  # lazy: avoid import cycle

        row: dict[str, Any] = {
            "protocol": self.protocol,
            "backend": self.backend,
            "rounds": int(self.rounds),
            "messages": int(self.messages),
            "messages_lost": int(self.messages_lost),
        }
        for key in sorted(self.summary):
            row[key] = float(self.summary[key])
        return ExperimentResult(
            experiment=f"run:{self.protocol}",
            description=f"spec-dispatched run of {self.protocol!r}",
            headers=list(row.keys()),
            rows=[row],
            seed=self.seed,
            parameters=self.spec.to_dict(),
            notes=[],
        )

    def describe(self) -> str:
        parts = [
            f"protocol         : {self.protocol}",
            f"backend          : {self.backend}",
            f"seed             : {self.seed}",
            f"rounds           : {self.rounds}",
            f"messages         : {self.messages} ({self.messages_lost} lost)",
        ]
        for key in sorted(self.summary):
            parts.append(f"{key:<17}: {self.summary[key]:.6g}")
        if self.degradation is not None:
            for key in sorted(self.degradation):
                value = self.degradation[key]
                if isinstance(value, (int, float)):
                    parts.append(f"churn {key:<11}: {float(value):.6g}")
        parts.append(f"wall time        : {self.wall_time_s:.3f}s")
        if self.telemetry is not None:
            from ..observability.telemetry import format_telemetry

            parts.append(format_telemetry(self.telemetry))
        return "\n".join(parts)
