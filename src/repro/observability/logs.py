"""The ``repro`` logger hierarchy.

All library logging goes through ``logging.getLogger("repro.<area>")`` so a
host application can route or silence it as usual.  The CLI calls
:func:`configure_logging` once, mapping ``--quiet``/``--verbose`` onto
levels; the default (WARNING) keeps stdout byte-identical with previous
releases — the handler writes to stderr, and INFO-level chatter (store
migrations, sweep scheduling, worker crash captures) only appears when
asked for.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger", "configure_logging"]

_ROOT_NAME = "repro"


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    return logging.getLogger(f"{_ROOT_NAME}.{name}" if name else _ROOT_NAME)


def configure_logging(verbosity: int = 0, stream=None) -> logging.Logger:
    """Attach one stderr handler to the ``repro`` root and set its level.

    ``verbosity``: -1 (``--quiet``) → ERROR, 0 → WARNING (default),
    1 (``-v``) → INFO, >=2 (``-vv``) → DEBUG.  Idempotent: repeated calls
    reconfigure the existing handler instead of stacking new ones.
    """
    if verbosity <= -1:
        level = logging.ERROR
    elif verbosity == 0:
        level = logging.WARNING
    elif verbosity == 1:
        level = logging.INFO
    else:
        level = logging.DEBUG

    root = get_logger()
    root.setLevel(level)
    handler = next(
        (h for h in root.handlers if getattr(h, "_repro_cli_handler", False)),
        None,
    )
    if handler is None:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler._repro_cli_handler = True
        root.addHandler(handler)
        # The CLI handler is the sink of record; don't duplicate into the
        # (usually unconfigured) stdlib root logger.
        root.propagate = False
    elif stream is not None:
        handler.setStream(stream)
    handler.setLevel(level)
    handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    return root
