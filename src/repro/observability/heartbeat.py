"""Live progress line for long-running interactive runs.

A :class:`Heartbeat` is a daemon thread that periodically prints a one-line
elapsed/phase/rounds summary from ``Telemetry.snapshot()`` to stderr.  It is
the interactive sibling of the sweep heartbeat *timestamps* that
``SweepRunner`` writes to the result store: the thread tells a human the run
is alive, the store column tells a future multi-host scheduler the same
thing.
"""

from __future__ import annotations

import sys
import threading

from .telemetry import NullTelemetry

__all__ = ["Heartbeat"]


class Heartbeat:
    """Print ``telemetry.snapshot()`` every ``interval_s`` seconds.

    Usable as a context manager; ``stop()`` is idempotent and joins the
    thread.  With a disabled (Null) telemetry the line still shows elapsed
    wall time, so ``--heartbeat`` works even without ``--telemetry``.
    """

    def __init__(
        self,
        telemetry: NullTelemetry,
        interval_s: float = 10.0,
        stream=None,
        label: str = "",
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"heartbeat interval must be positive, got {interval_s}")
        self._telemetry = telemetry
        self._interval = float(interval_s)
        self._stream = stream if stream is not None else sys.stderr
        self._label = label
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._ticks = 0

    @property
    def ticks(self) -> int:
        return self._ticks

    def _format_line(self) -> str:
        import time

        if self._telemetry.enabled:
            snap = self._telemetry.snapshot()
            elapsed = snap["elapsed_s"]
            detail = f" phase={snap['phase'] or '-'} rounds={snap['rounds']}"
        else:
            elapsed = time.perf_counter() - self._started
            detail = ""
        prefix = f"{self._label}: " if self._label else ""
        return f"[heartbeat] {prefix}elapsed={elapsed:.1f}s{detail}"

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self._ticks += 1
            print(self._format_line(), file=self._stream, flush=True)

    def start(self) -> "Heartbeat":
        import time

        self._started = time.perf_counter()
        self._thread = threading.Thread(target=self._run, name="repro-heartbeat", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self._interval + 1.0)
            self._thread = None

    def __enter__(self) -> "Heartbeat":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
