"""Run telemetry: phase/round wall-time spans, counters, and pool utilization.

:class:`MetricsCollector` measures *counts* — rounds, messages, words — which
is what the paper's complexity claims are stated in.  This module measures
*time*: where a run's wall clock went, phase by phase, primitive by
primitive, worker by worker.  The two are deliberately separate objects:
metrics are part of a run's outcome (bit-identical across backends, hashed,
compared), telemetry is an observation *about* an execution and must never
influence it.

Design rules
------------
* **Zero cost when off.**  The ambient recorder defaults to the
  :data:`NULL_TELEMETRY` singleton (``enabled = False``); every hot-path
  hook guards on ``enabled`` (one global read + attribute test), and the
  instrumented delivery primitives keep their undecorated originals
  reachable via ``__wrapped__`` so the benchmark gate can measure the
  disabled-path overhead honestly.
* **No effect on outcomes.**  A :class:`Telemetry` only ever reads clocks
  and counters — it never touches the RNG stream, the loss oracle, or the
  metrics collector, so same-seed results are bit-identical with telemetry
  on or off (``tests/test_observability.py`` asserts this for every
  protocol on all three backends).
* **Bounded memory.**  Per-round duration samples go through a decimating
  reservoir (:class:`RoundSampler`): once ``cap`` samples are held, every
  other one is dropped and the sampling stride doubles, so arbitrarily long
  runs keep at most ``cap`` samples per phase while min/max/mean stay exact.

The ambient recorder is installed with :func:`use_telemetry` (a context
manager) and read with :func:`current_telemetry`; threading a recorder
through every protocol signature would have meant touching each of the ten
protocol entry points and both kernels for a cross-cutting concern.
"""

from __future__ import annotations

import contextlib
import functools
import json
import time
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Sequence

__all__ = [
    "NullTelemetry",
    "Telemetry",
    "RoundSampler",
    "NULL_TELEMETRY",
    "current_telemetry",
    "use_telemetry",
    "instrumented",
    "events_from_telemetry",
    "write_events_jsonl",
    "format_telemetry",
]

_perf_counter = time.perf_counter


def _peak_rss_bytes() -> int | None:
    """Peak resident set size of this process, or None when unavailable."""
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is bytes on macOS, kilobytes on Linux.
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


class RoundSampler:
    """Decimating reservoir of round durations: bounded memory, exact extrema.

    Holds at most ``cap`` samples: when full, every other stored sample is
    dropped and the stride doubles, so long runs keep an evenly spaced
    subsample.  ``count``/``total``/``min``/``max`` are maintained over every
    observation, not just the retained ones.
    """

    __slots__ = ("cap", "stride", "count", "total", "min", "max", "samples")

    def __init__(self, cap: int = 512) -> None:
        if cap < 2:
            raise ValueError(f"sampler cap must be >= 2, got {cap}")
        self.cap = int(cap)
        self.stride = 1
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        self.samples: list[float] = []

    def add(self, value: float) -> None:
        value = float(value)
        if self.count % self.stride == 0:
            if len(self.samples) >= self.cap:
                self.samples = self.samples[::2]
                self.stride *= 2
            if self.count % self.stride == 0:
                self.samples.append(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def as_dict(self) -> dict[str, Any]:
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.total / self.count,
            "min_s": self.min,
            "max_s": self.max,
            "stride": self.stride,
            "samples_s": list(self.samples),
        }


class NullTelemetry:
    """The disabled recorder: every hook is a no-op.

    This is the ambient default; hot paths test ``enabled`` before doing any
    work, so the only per-call cost of disabled telemetry is that test.
    """

    enabled = False

    def phase_begin(self, name: str) -> None:
        pass

    def round_tick(self) -> None:
        pass

    def add_span(self, name: str, seconds: float) -> None:
        pass

    def span(self, name: str):
        return _NULL_CONTEXT

    def count(self, name: str, increment: int = 1) -> None:
        pass

    def gauge_max(self, name: str, value: float) -> None:
        pass

    def record_pool_round(self, busy_s: Sequence[float], wall_s: float) -> None:
        pass

    def finish(self) -> None:
        pass

    def as_dict(self) -> dict[str, Any]:
        return {}


_NULL_CONTEXT = contextlib.nullcontext()

#: process-wide disabled recorder (stateless, shared)
NULL_TELEMETRY = NullTelemetry()


class Telemetry(NullTelemetry):
    """One run's time-domain observations.

    Feeds from three kinds of hooks:

    * the :class:`~repro.simulator.metrics.MetricsCollector` phase/round
      hooks (every backend's round loop already reports through the
      collector, so phase wall times and per-round durations come for free
      on ``engine``, ``vectorized``, and ``sharded`` alike);
    * the instrumented substrate primitives (`substrate.deliver`,
      `substrate.probe_exchange`, `substrate.relay`, ...), which record
      per-primitive spans;
    * the sharded pool, which reports per-worker busy seconds, per-round
      barrier waits, inline-fallback counts, and shm arena sizes.
    """

    enabled = True

    def __init__(self, round_sample_cap: int = 512) -> None:
        self._start = _perf_counter()
        self._round_sample_cap = int(round_sample_cap)
        self._phase: str | None = None
        self._phase_started: float = self._start
        self._last_tick: float | None = None
        self._phase_wall: dict[str, float] = {}
        self._phase_order: list[str] = []
        self._rounds: dict[str, RoundSampler] = {}
        self._spans: dict[str, list] = {}  # name -> [count, total, min, max]
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._worker_busy: dict[int, float] = {}
        self._worker_wait: dict[int, float] = {}
        self._pool_rounds = 0
        self._pool_overhead = 0.0
        self._wall: float | None = None
        self._peak_rss: int | None = None

    # ------------------------------------------------------------------ #
    # phases and rounds (driven by MetricsCollector)
    # ------------------------------------------------------------------ #
    def _credit_phase(self, now: float) -> None:
        if self._phase is not None:
            self._phase_wall[self._phase] = (
                self._phase_wall.get(self._phase, 0.0) + now - self._phase_started
            )

    def phase_begin(self, name: str) -> None:
        now = _perf_counter()
        self._credit_phase(now)
        if name not in self._phase_wall:
            self._phase_wall[name] = 0.0
            self._phase_order.append(name)
        self._phase = name
        self._phase_started = now
        # Round boundaries do not cross phases.
        self._last_tick = None

    def round_tick(self) -> None:
        """Called at each round boundary; samples the previous round's duration."""
        if self._phase is None:
            # Round activity before any named phase (mirrors the metrics
            # collector's implicit default phase).
            self.phase_begin("default")
        now = _perf_counter()
        if self._last_tick is not None:
            sampler = self._rounds.get(self._phase)
            if sampler is None:
                sampler = self._rounds[self._phase] = RoundSampler(self._round_sample_cap)
            sampler.add(now - self._last_tick)
        self._last_tick = now

    # ------------------------------------------------------------------ #
    # spans, counters, gauges
    # ------------------------------------------------------------------ #
    def add_span(self, name: str, seconds: float) -> None:
        stats = self._spans.get(name)
        if stats is None:
            self._spans[name] = [1, seconds, seconds, seconds]
            return
        stats[0] += 1
        stats[1] += seconds
        if seconds < stats[2]:
            stats[2] = seconds
        if seconds > stats[3]:
            stats[3] = seconds

    @contextlib.contextmanager
    def span(self, name: str):
        start = _perf_counter()
        try:
            yield self
        finally:
            self.add_span(name, _perf_counter() - start)

    def count(self, name: str, increment: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + int(increment)

    def gauge_max(self, name: str, value: float) -> None:
        if value > self._gauges.get(name, float("-inf")):
            self._gauges[name] = value

    # ------------------------------------------------------------------ #
    # sharded pool utilization
    # ------------------------------------------------------------------ #
    def record_pool_round(self, busy_s: Sequence[float], wall_s: float) -> None:
        """One pool barrier: per-worker busy seconds and the parent's wall.

        A worker's barrier wait for the round is the slowest worker's busy
        time minus its own (everyone leaves the barrier together); the
        remainder of the parent's wall — staging, IPC, the joins — is
        accumulated as pool overhead.
        """
        slowest = max(busy_s) if busy_s else 0.0
        for index, busy in enumerate(busy_s):
            self._worker_busy[index] = self._worker_busy.get(index, 0.0) + float(busy)
            self._worker_wait[index] = self._worker_wait.get(index, 0.0) + (slowest - float(busy))
        self._pool_rounds += 1
        self._pool_overhead += max(0.0, float(wall_s) - slowest)

    # ------------------------------------------------------------------ #
    # lifecycle / export
    # ------------------------------------------------------------------ #
    def finish(self) -> None:
        """Close the open phase and stamp run totals (idempotent)."""
        if self._wall is not None:
            return
        now = _perf_counter()
        self._credit_phase(now)
        self._phase = None
        self._wall = now - self._start
        self._peak_rss = _peak_rss_bytes()

    def snapshot(self) -> dict[str, Any]:
        """Cheap live view for progress/heartbeat lines (no finish needed)."""
        rounds = sum(s.count for s in self._rounds.values())
        return {
            "elapsed_s": _perf_counter() - self._start,
            "phase": self._phase,
            "rounds": rounds,
        }

    def as_dict(self) -> dict[str, Any]:
        """The serialisable telemetry document (``RunResult.telemetry``)."""
        self.finish()
        doc: dict[str, Any] = {
            "wall_s": self._wall,
            "phases": {
                name: {
                    "wall_s": self._phase_wall[name],
                    "rounds": (
                        self._rounds[name].as_dict() if name in self._rounds else {"count": 0}
                    ),
                }
                for name in self._phase_order
            },
        }
        if self._peak_rss is not None:
            doc["peak_rss_bytes"] = self._peak_rss
        if self._spans:
            doc["spans"] = {
                name: {"count": c, "total_s": t, "min_s": lo, "max_s": hi}
                for name, (c, t, lo, hi) in sorted(self._spans.items())
            }
        if self._counters:
            doc["counters"] = dict(sorted(self._counters.items()))
        if self._gauges:
            doc["gauges"] = dict(sorted(self._gauges.items()))
        if self._pool_rounds:
            doc["sharded"] = {
                "pool_rounds": self._pool_rounds,
                "parent_overhead_s": self._pool_overhead,
                "workers": {
                    str(index): {
                        "busy_s": self._worker_busy[index],
                        "barrier_wait_s": self._worker_wait.get(index, 0.0),
                    }
                    for index in sorted(self._worker_busy)
                },
            }
        return doc


# --------------------------------------------------------------------------- #
# the ambient recorder
# --------------------------------------------------------------------------- #
_CURRENT: NullTelemetry = NULL_TELEMETRY


def current_telemetry() -> NullTelemetry:
    """The ambient recorder (the shared :data:`NULL_TELEMETRY` when off)."""
    return _CURRENT


@contextlib.contextmanager
def use_telemetry(telemetry: NullTelemetry):
    """Install ``telemetry`` as the ambient recorder for the enclosed run."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = telemetry if telemetry is not None else NULL_TELEMETRY
    try:
        yield _CURRENT
    finally:
        _CURRENT = previous


def instrumented(name: str) -> Callable:
    """Wrap a substrate primitive in a named telemetry span.

    When telemetry is disabled the wrapper is one global read, one attribute
    test, and the delegated call; the undecorated function stays reachable
    as ``__wrapped__`` so ``benchmarks/bench_substrate.py`` can measure that
    residue against a hook-free run and enforce the <2% disabled-path gate.
    """

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            telemetry = _CURRENT
            if not telemetry.enabled:
                return fn(*args, **kwargs)
            start = _perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                telemetry.add_span(name, _perf_counter() - start)

        return wrapper

    return decorate


# --------------------------------------------------------------------------- #
# JSONL event export
# --------------------------------------------------------------------------- #
def events_from_telemetry(doc: Mapping[str, Any]) -> Iterator[dict[str, Any]]:
    """Flatten a telemetry document into JSONL-ready event records.

    Operates on the serialised document (not the live object) so events can
    be exported from a fresh run, a ``RunResult``, or a stored
    ``telemetry_json`` row alike.  Event types: ``run``, ``phase``,
    ``round_samples``, ``span``, ``counter``, ``gauge``, ``worker``.
    """
    run_event: dict[str, Any] = {"event": "run", "wall_s": doc.get("wall_s")}
    if "peak_rss_bytes" in doc:
        run_event["peak_rss_bytes"] = doc["peak_rss_bytes"]
    yield run_event
    for name, phase in doc.get("phases", {}).items():
        rounds = phase.get("rounds", {})
        yield {
            "event": "phase",
            "name": name,
            "wall_s": phase.get("wall_s"),
            "rounds": rounds.get("count", 0),
        }
        if rounds.get("count"):
            yield {
                "event": "round_samples",
                "phase": name,
                "count": rounds["count"],
                "mean_s": rounds.get("mean_s"),
                "min_s": rounds.get("min_s"),
                "max_s": rounds.get("max_s"),
                "stride": rounds.get("stride", 1),
                "samples_s": rounds.get("samples_s", []),
            }
    for name, span in doc.get("spans", {}).items():
        yield {"event": "span", "name": name, **span}
    for name, value in doc.get("counters", {}).items():
        yield {"event": "counter", "name": name, "value": value}
    for name, value in doc.get("gauges", {}).items():
        yield {"event": "gauge", "name": name, "value": value}
    sharded = doc.get("sharded")
    if sharded:
        for index, worker in sharded.get("workers", {}).items():
            yield {
                "event": "worker",
                "index": int(index),
                "busy_s": worker.get("busy_s"),
                "barrier_wait_s": worker.get("barrier_wait_s"),
                "pool_rounds": sharded.get("pool_rounds"),
            }


def write_events_jsonl(doc: Mapping[str, Any], path: str | Path, append: bool = False) -> Path:
    """Write a telemetry document as one JSON event per line."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    mode = "a" if append else "w"
    with path.open(mode) as handle:
        for event in events_from_telemetry(doc):
            handle.write(json.dumps(event, sort_keys=True) + "\n")
    return path


def format_telemetry(doc: Mapping[str, Any]) -> str:
    """Human-readable summary of a telemetry document (CLI surfaces)."""
    if not doc:
        return "(no telemetry recorded)"
    lines = [f"telemetry        : wall {doc.get('wall_s', 0.0):.3f}s"]
    if "peak_rss_bytes" in doc:
        lines.append(f"peak rss         : {doc['peak_rss_bytes'] / 1e6:.1f} MB")
    for name, phase in doc.get("phases", {}).items():
        rounds = phase.get("rounds", {})
        count = rounds.get("count", 0)
        detail = ""
        if count:
            detail = f" ({count} rounds, mean {rounds.get('mean_s', 0.0) * 1e3:.2f} ms)"
        lines.append(f"  phase {name:<15} {phase.get('wall_s', 0.0):8.3f}s{detail}")
    spans = doc.get("spans", {})
    if spans:
        top = sorted(spans.items(), key=lambda item: -item[1].get("total_s", 0.0))[:8]
        for name, span in top:
            lines.append(
                f"  span  {name:<28} {span.get('total_s', 0.0):8.3f}s x{span.get('count', 0)}"
            )
    for name, value in doc.get("counters", {}).items():
        lines.append(f"  count {name:<28} {value}")
    for name, value in doc.get("gauges", {}).items():
        lines.append(f"  gauge {name:<28} {value:g}")
    sharded = doc.get("sharded")
    if sharded:
        lines.append(
            f"  pool  rounds={sharded.get('pool_rounds', 0)} "
            f"parent_overhead={sharded.get('parent_overhead_s', 0.0):.3f}s"
        )
        for index, worker in sharded.get("workers", {}).items():
            lines.append(
                f"    worker {index}: busy {worker.get('busy_s', 0.0):.3f}s, "
                f"barrier wait {worker.get('barrier_wait_s', 0.0):.3f}s"
            )
    return "\n".join(lines)
