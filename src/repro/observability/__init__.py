"""Observability: telemetry recording, logging, and liveness signals.

Everything here observes execution without influencing it: a
:class:`Telemetry` recorder never touches RNG streams or metrics, so
same-seed outcomes are bit-identical with telemetry on or off.
"""

from .heartbeat import Heartbeat
from .logs import configure_logging, get_logger
from .telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    RoundSampler,
    Telemetry,
    current_telemetry,
    events_from_telemetry,
    format_telemetry,
    instrumented,
    use_telemetry,
    write_events_jsonl,
)

__all__ = [
    "Heartbeat",
    "configure_logging",
    "get_logger",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "RoundSampler",
    "Telemetry",
    "current_telemetry",
    "events_from_telemetry",
    "format_telemetry",
    "instrumented",
    "use_telemetry",
    "write_events_jsonl",
]
