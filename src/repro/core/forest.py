"""The ranking forest produced by DRR / Local-DRR (Phase I output).

Both ranking schemes produce the same object: every node either points to a
parent of strictly higher rank or is a root, so the parent pointers form a
forest of disjoint trees.  :class:`Forest` stores the parent array together
with the ranks, derives children lists / tree ids / sizes / heights, and
validates the structural invariants that the analysis of Theorems 2-4 and
11-13 relies on:

* acyclicity (guaranteed by the rank-increase property, checked anyway),
* every non-root's parent has strictly higher rank,
* tree ids partition the node set.

The convergecast, broadcast, and gossip phases all consume a ``Forest``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator

import numpy as np

__all__ = ["Forest", "ForestInvariantError"]

NO_PARENT = -1


class ForestInvariantError(ValueError):
    """Raised when a claimed forest violates a structural invariant."""


@dataclass(frozen=True)
class Forest:
    """A forest over nodes ``0 .. n-1`` defined by parent pointers.

    Parameters
    ----------
    parent:
        ``parent[i]`` is the parent node of ``i`` or ``-1`` when ``i`` is a
        root.
    rank:
        The random rank each node drew in Phase I.  Only used for invariant
        checking and analysis; the later phases never look at ranks.
    alive:
        Optional liveness mask; crashed nodes are recorded as isolated roots
        so downstream phases can skip them uniformly.
    """

    parent: np.ndarray
    rank: np.ndarray
    alive: np.ndarray | None = None

    def __post_init__(self) -> None:
        parent = np.asarray(self.parent, dtype=np.int64)
        rank = np.asarray(self.rank, dtype=float)
        object.__setattr__(self, "parent", parent)
        object.__setattr__(self, "rank", rank)
        if parent.ndim != 1 or rank.ndim != 1 or parent.size != rank.size:
            raise ForestInvariantError("parent and rank must be 1-D arrays of equal length")
        if self.alive is not None:
            alive = np.asarray(self.alive, dtype=bool)
            if alive.shape != parent.shape:
                raise ForestInvariantError("alive mask must match parent length")
            object.__setattr__(self, "alive", alive)

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        return int(self.parent.size)

    @cached_property
    def roots(self) -> np.ndarray:
        """Node ids that have no parent (the set V-tilde of the paper)."""
        return np.flatnonzero(self.parent == NO_PARENT)

    @property
    def root_count(self) -> int:
        return int(self.roots.size)

    def is_root(self, node_id: int) -> bool:
        return self.parent[node_id] == NO_PARENT

    @cached_property
    def children(self) -> tuple[tuple[int, ...], ...]:
        """Children lists, index-aligned with node ids."""
        kids: list[list[int]] = [[] for _ in range(self.n)]
        for child, par in enumerate(self.parent):
            if par != NO_PARENT:
                kids[par].append(child)
        return tuple(tuple(c) for c in kids)

    @cached_property
    def child_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Columnar children view: ``(children_sorted, child_start)``.

        ``children_sorted`` holds all non-root node ids grouped by parent
        (ascending parent, ascending child id within a parent);
        ``child_start`` has length ``n + 1`` and delimits each parent's
        slice CSR-style: the children of ``p`` are
        ``children_sorted[child_start[p]:child_start[p + 1]]``.  This is the
        representation the vectorized substrate uses; :attr:`children` stays
        available for per-node (engine) code and small-n tests.
        """
        non_roots = np.flatnonzero(self.parent != NO_PARENT)
        order = non_roots[np.argsort(self.parent[non_roots], kind="stable")]
        counts = np.bincount(self.parent[non_roots], minlength=self.n)
        start = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(counts, out=start[1:])
        return order.astype(np.int64), start

    def is_leaf(self, node_id: int) -> bool:
        return self.parent[node_id] != NO_PARENT and not self.children[node_id]

    # ------------------------------------------------------------------ #
    # derived structure
    # ------------------------------------------------------------------ #
    @cached_property
    def tree_id(self) -> np.ndarray:
        """``tree_id[i]`` is the root of the tree containing node ``i``.

        Computed by iterative pointer-jumping so deep trees (Local-DRR on a
        ring can produce Theta(log n) depth) never hit the recursion limit.
        """
        roots = self.parent.copy()
        roots[roots == NO_PARENT] = np.flatnonzero(self.parent == NO_PARENT)
        # Pointer jumping: after k iterations every pointer has jumped 2^k
        # levels, so ceil(log2(max depth)) + 1 iterations suffice.
        for _ in range(max(1, int(np.ceil(np.log2(max(2, self.n)))) + 1)):
            new_roots = roots[roots]
            if np.array_equal(new_roots, roots):
                break
            roots = new_roots
        else:  # pragma: no cover - only reachable on a cyclic "forest"
            raise ForestInvariantError("parent pointers contain a cycle")
        return roots

    @cached_property
    def depth(self) -> np.ndarray:
        """``depth[i]`` = number of edges from node ``i`` up to its root.

        Computed by a vectorised simultaneous walk of all parent pointers
        (``O(n)`` work per level, max-depth iterations), so it stays cheap
        at the million-node scale the vectorized substrate targets.
        """
        # Pointer doubling: after k iterations every pointer has jumped
        # 2^k levels and `depth` holds the number of levels jumped, so
        # ceil(log2(max depth)) + 1 iterations suffice -- even a
        # chain-shaped forest (max depth n) costs only O(n log n) total.
        # The walk runs over the compacted index set of still-walking nodes
        # (typical DRR forests are shallow, so the set collapses after a
        # few iterations instead of scanning n-sized masks every time).
        depth = (self.parent != NO_PARENT).astype(np.int64)
        ptr = self.parent.copy()
        idx = np.flatnonzero(ptr != NO_PARENT)
        for _ in range(max(1, int(np.ceil(np.log2(max(2, self.n)))) + 1)):
            if idx.size == 0:
                return depth
            hop = ptr[idx]
            depth[idx] += depth[hop]
            ptr[idx] = ptr[hop]
            idx = idx[ptr[idx] != NO_PARENT]
        if idx.size:
            raise ForestInvariantError("parent pointers contain a cycle")
        return depth

    @cached_property
    def tree_sizes(self) -> dict[int, int]:
        """Mapping root id -> number of nodes in its tree (Theorem 3 quantity)."""
        ids, counts = np.unique(self.tree_id, return_counts=True)
        return {int(r): int(c) for r, c in zip(ids, counts)}

    @cached_property
    def tree_heights(self) -> dict[int, int]:
        """Mapping root id -> height (max depth) of its tree (Theorem 11 quantity)."""
        heights = np.zeros(self.n, dtype=np.int64)
        np.maximum.at(heights, self.tree_id, self.depth)
        return {int(r): int(heights[r]) for r in self.roots}

    @property
    def max_tree_size(self) -> int:
        return max(self.tree_sizes.values())

    @property
    def max_tree_height(self) -> int:
        return max(self.tree_heights.values())

    def tree_members(self, root: int) -> np.ndarray:
        """All node ids in the tree rooted at ``root`` (including the root)."""
        if not self.is_root(root):
            raise ValueError(f"node {root} is not a root")
        return np.flatnonzero(self.tree_id == root)

    def size_of(self, root: int) -> int:
        return self.tree_sizes[int(root)]

    def largest_root(self) -> int:
        """Root of the largest tree; ties broken by smaller node id.

        DRR-gossip-ave needs this node: only the largest tree's root is
        guaranteed (Theorem 7) to converge, and it then Data-spreads the
        answer to the other roots.
        """
        best_root, best_size = -1, -1
        for root in sorted(self.tree_sizes):
            size = self.tree_sizes[root]
            if size > best_size:
                best_root, best_size = root, size
        return best_root

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def topological_order(self) -> np.ndarray:
        """Nodes ordered so parents precede children (roots first)."""
        order = np.argsort(self.depth, kind="stable")
        return order

    def depth_by_bfs(self) -> np.ndarray:
        """Depths computed by a level-synchronous sweep from the roots.

        Unlike :attr:`depth` (which trusts the pointers), this raises on a
        cyclic "forest": a node inside a cycle is never reached from any
        root, so its depth stays unassigned.
        """
        depth = np.full(self.n, -1, dtype=np.int64)
        depth[self.parent == NO_PARENT] = 0
        unassigned = np.flatnonzero(depth < 0)
        level = 0
        while unassigned.size:
            level += 1
            reached = depth[self.parent[unassigned]] == level - 1
            if not reached.any():
                raise ForestInvariantError(
                    "parent pointers contain a cycle or dangling reference"
                )
            depth[unassigned[reached]] = level
            unassigned = unassigned[~reached]
        return depth

    def leaves(self) -> Iterator[int]:
        for node in range(self.n):
            if self.is_leaf(node):
                yield node

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def validate(self, require_rank_increase: bool = True) -> None:
        """Check all structural invariants, raising on the first violation."""
        if ((self.parent < NO_PARENT) | (self.parent >= self.n)).any():
            raise ForestInvariantError("parent pointer out of range")
        if (self.parent == np.arange(self.n)).any():
            raise ForestInvariantError("a node cannot be its own parent")
        # the pointer-doubling depth walk raises if there is a cycle.
        self.depth
        if require_rank_increase:
            non_roots = np.flatnonzero(self.parent != NO_PARENT)
            parents = self.parent[non_roots]
            bad = ~(self.rank[parents] > self.rank[non_roots])
            if bad.any():
                offender = int(non_roots[np.argmax(bad)])
                raise ForestInvariantError(
                    f"node {offender} has rank {self.rank[offender]} but its parent "
                    f"{int(self.parent[offender])} has rank {self.rank[int(self.parent[offender])]}"
                )
        if self.root_count == 0:
            raise ForestInvariantError("a forest must contain at least one root")

    # ------------------------------------------------------------------ #
    # summaries
    # ------------------------------------------------------------------ #
    def summary(self) -> dict:
        sizes = np.array(list(self.tree_sizes.values()), dtype=float)
        heights = np.array(list(self.tree_heights.values()), dtype=float)
        return {
            "n": self.n,
            "roots": self.root_count,
            "max_tree_size": int(sizes.max()),
            "mean_tree_size": float(sizes.mean()),
            "max_tree_height": int(heights.max()),
            "mean_tree_height": float(heights.mean()),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Forest(n={self.n}, roots={self.root_count}, "
            f"max_size={self.max_tree_size}, max_height={self.max_tree_height})"
        )
