"""The complete DRR-gossip pipelines (Algorithms 7 and 8) and their reductions.

This module glues the three phases together:

* :func:`drr_gossip_max` / :func:`drr_gossip_min` -- Algorithm 7: DRR,
  Convergecast-max, root-address Broadcast, Gossip-max, final Broadcast.
* :func:`drr_gossip_average` -- Algorithm 8: DRR, Convergecast-sum,
  root-address Broadcast, Gossip-max on tree sizes (to identify the root of
  the largest tree), Gossip-ave, Data-spread from the largest root, final
  Broadcast.
* :func:`drr_gossip_sum` / :func:`drr_gossip_count` -- Sum and Count through
  the same machinery: after the largest-tree root ``z`` is identified it runs
  push-sum with weight 1 at ``z`` and 0 elsewhere, so ``s/w`` converges to
  the global Sum (with ``s`` = local sums) or Count (``s`` = tree sizes).
* :func:`drr_gossip_rank` -- the rank of a query value as the Sum of the
  indicator values ``v_i <= query``, rounded to the nearest integer.

The result object reports per-node estimates, the exact reference value, and
the full per-phase round/message breakdown (the quantities Table 1 and the
Section 3.5 accounting are about).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..simulator.failures import ChurnOracle, FailureModel
from ..simulator.metrics import MetricsCollector
from ..simulator.rng import make_rng
from ..substrate import normalize_backend
from .aggregates import Aggregate, exact_aggregate
from .convergecast import run_broadcast, run_convergecast
from .drr import DRRResult, run_drr
from .data_spread import run_data_spread
from .gossip_ave import run_gossip_ave
from .gossip_max import run_gossip_max

__all__ = [
    "DRRGossipConfig",
    "DRRGossipResult",
    "broadcast_root_addresses",
    "drr_gossip",
    "drr_gossip_max",
    "drr_gossip_min",
    "drr_gossip_average",
    "drr_gossip_sum",
    "drr_gossip_count",
    "drr_gossip_rank",
]


@dataclass(frozen=True)
class DRRGossipConfig:
    """Tunables of a DRR-gossip run.

    All ``None`` round budgets fall back to the defaults of the respective
    phase modules (the paper's asymptotic budgets with practical constants).
    """

    #: probe budget of Phase I; ``None`` = the paper's ``log2(n) - 1``.
    probe_budget: int | None = None
    #: rounds of the Gossip-max gossip procedure.
    gossip_rounds: int | None = None
    #: rounds of the Gossip-max sampling procedure.
    sampling_rounds: int | None = None
    #: rounds of Gossip-ave.
    ave_rounds: int | None = None
    #: target relative error of Gossip-ave (``None`` = 1/n).
    epsilon: float | None = None
    #: message loss / initial crash model.
    failure_model: FailureModel = field(default_factory=FailureModel)
    #: substrate backend executing every phase: ``"vectorized"`` (columnar
    #: NumPy, the production hot path) or ``"engine"`` (message-level
    #: simulation, the fidelity reference).
    backend: str = "vectorized"

    def __post_init__(self) -> None:
        object.__setattr__(self, "backend", normalize_backend(self.backend))

    def with_failures(self, failure_model: FailureModel) -> "DRRGossipConfig":
        return dataclasses.replace(self, failure_model=failure_model)

    def with_backend(self, backend: str) -> "DRRGossipConfig":
        return dataclasses.replace(self, backend=normalize_backend(backend))


@dataclass
class DRRGossipResult:
    """Outcome of one DRR-gossip execution.

    Attributes
    ----------
    aggregate:
        Which aggregate was computed.
    estimates:
        Per-node estimate; NaN for nodes that never learned the answer
        (crashed, or cut off by lost broadcast messages).
    learned:
        Boolean mask of nodes that hold an estimate.
    exact:
        The centralised reference value over the alive nodes' inputs.
    rounds / messages:
        Totals over all phases (``metrics`` has the breakdown).
    drr:
        The Phase I result (forest, probes, ...), exposed because most
        experiments also want the forest statistics.
    """

    aggregate: Aggregate
    estimates: np.ndarray
    learned: np.ndarray
    exact: float
    rounds: int
    messages: int
    metrics: MetricsCollector
    drr: DRRResult
    root_estimates: dict[int, float]
    n: int

    @property
    def max_relative_error(self) -> float:
        """Worst relative error over nodes that learned an estimate."""
        if not self.learned.any():
            return float("inf")
        learned_estimates = self.estimates[self.learned]
        if self.exact == 0.0:
            return float(np.max(np.abs(learned_estimates)))
        return float(np.max(np.abs(learned_estimates - self.exact) / abs(self.exact)))

    @property
    def all_correct(self) -> bool:
        """True when every node that learned an estimate learned the exact value."""
        return bool(self.learned.any()) and bool(
            np.all(self.estimates[self.learned] == self.exact)
        )

    @property
    def coverage(self) -> float:
        """Fraction of alive nodes that hold an estimate."""
        alive = self.drr.forest.alive
        alive = alive if alive is not None else np.ones(self.n, dtype=bool)
        return float(self.learned[alive].mean())

    def messages_by_phase(self) -> dict[str, int]:
        return self.metrics.messages_by_phase()

    def rounds_by_phase(self) -> dict[str, int]:
        return self.metrics.rounds_by_phase()


# --------------------------------------------------------------------------- #
# shared phase helpers
# --------------------------------------------------------------------------- #
def _run_phase_one(
    n: int,
    rng: np.random.Generator,
    config: DRRGossipConfig,
    metrics: MetricsCollector,
) -> DRRResult:
    return run_drr(
        n,
        rng=rng,
        probe_budget=config.probe_budget,
        failure_model=config.failure_model,
        metrics=metrics,
        backend=config.backend,
    )


def _alive_mask(drr: DRRResult) -> np.ndarray:
    alive = drr.forest.alive
    return alive if alive is not None else np.ones(drr.forest.n, dtype=bool)


def _pipeline_churn(
    config: DRRGossipConfig, rng: np.random.Generator
) -> ChurnOracle | None:
    """Derive the pipeline's churn oracle; the DRR pipelines are crash-only.

    Churn strikes during the long-running Phase III gossip procedures; the
    tree-building phases (DRR, Convergecast, the Broadcasts) are treated as
    instantaneous, exactly like the initial-crash model.  A joined node
    cannot re-enter a tree whose construction already finished, so join
    events are rejected up front.  Deriving the oracle here (zero variates
    consumed) keys it to the run, not to any single procedure.
    """
    churn = ChurnOracle.for_run(config.failure_model, rng)
    if churn is not None and churn.has_joins:
        raise ValueError(
            "drr-gossip pipelines are crash-only under churn: a node cannot "
            "rejoin a tree whose construction already finished (set "
            "join_rate=0 and use no join schedule events; the "
            "epoch-gossip-ave protocol supports joins)"
        )
    return churn


def _alive_roots(drr: DRRResult) -> np.ndarray:
    alive = _alive_mask(drr)
    return np.array([int(r) for r in drr.forest.roots if alive[r]], dtype=np.int64)


def broadcast_root_addresses(
    drr: DRRResult,
    roots: np.ndarray,
    rng: np.random.Generator,
    config: DRRGossipConfig,
    metrics: MetricsCollector,
) -> np.ndarray:
    """Phase II broadcast of each root's address; returns the forwarding table.

    The returned array maps every node to the root whose address it learned
    (``-1`` for nodes the broadcast never reached).  Exposed publicly because
    experiment drivers that assemble custom pipelines (Gossip-max / Gossip-ave
    convergence studies) need the same forwarding table the full DRR-gossip
    pipelines build internally.
    """
    payload = {int(r): float(r) for r in roots}
    outcome = run_broadcast(
        drr,
        payload,
        failure_model=config.failure_model,
        rng=rng,
        metrics=metrics,
        phase_name="broadcast-root",
        backend=config.backend,
    )
    root_of = np.full(drr.forest.n, -1, dtype=np.int64)
    received = outcome.received
    root_of[received] = outcome.payload[received].astype(np.int64)
    return root_of


def _broadcast_estimates(
    drr: DRRResult,
    root_estimates: dict[int, float],
    rng: np.random.Generator,
    config: DRRGossipConfig,
    metrics: MetricsCollector,
) -> tuple[np.ndarray, np.ndarray]:
    """Final Phase: roots broadcast the global aggregate to their trees."""
    outcome = run_broadcast(
        drr,
        root_estimates,
        failure_model=config.failure_model,
        rng=rng,
        metrics=metrics,
        phase_name="broadcast-final",
        backend=config.backend,
    )
    return outcome.payload, outcome.received


def _convergecast(
    drr: DRRResult,
    values: np.ndarray,
    op: str,
    rng: np.random.Generator,
    config: DRRGossipConfig,
    metrics: MetricsCollector,
):
    return run_convergecast(
        drr,
        values,
        op=op,
        failure_model=config.failure_model,
        rng=rng,
        metrics=metrics,
        backend=config.backend,
    )


def _finalise(
    aggregate: Aggregate,
    drr: DRRResult,
    root_estimates: dict[int, float],
    payload: np.ndarray,
    received: np.ndarray,
    values: np.ndarray,
    metrics: MetricsCollector,
    transform: Callable[[np.ndarray], np.ndarray] | None = None,
    exact_value: float | None = None,
) -> DRRGossipResult:
    alive = _alive_mask(drr)
    estimates = payload.copy()
    learned = received.copy()
    estimates[~alive] = np.nan
    learned[~alive] = False
    if transform is not None:
        finite = np.isfinite(estimates)
        estimates[finite] = transform(estimates[finite])
        root_estimates = {r: float(transform(np.array([v]))[0]) for r, v in root_estimates.items()}
    exact = (
        exact_value
        if exact_value is not None
        else exact_aggregate(aggregate, values[alive])
    )
    return DRRGossipResult(
        aggregate=aggregate,
        estimates=estimates,
        learned=learned,
        exact=float(exact),
        rounds=metrics.total_rounds,
        messages=metrics.total_messages,
        metrics=metrics,
        drr=drr,
        root_estimates=root_estimates,
        n=drr.forest.n,
    )


# --------------------------------------------------------------------------- #
# Algorithm 7: DRR-gossip-max (and min by negation)
# --------------------------------------------------------------------------- #
def drr_gossip_max(
    values: np.ndarray,
    rng: np.random.Generator | int | None = None,
    config: DRRGossipConfig | None = None,
) -> DRRGossipResult:
    """Compute the global Max at every node (Algorithm 7)."""
    return _extremum_pipeline(values, Aggregate.MAX, rng, config, negate=False)


def drr_gossip_min(
    values: np.ndarray,
    rng: np.random.Generator | int | None = None,
    config: DRRGossipConfig | None = None,
) -> DRRGossipResult:
    """Compute the global Min at every node (Algorithm 7 on negated values)."""
    return _extremum_pipeline(values, Aggregate.MIN, rng, config, negate=True)


def _extremum_pipeline(
    values: np.ndarray,
    aggregate: Aggregate,
    rng: np.random.Generator | int | None,
    config: DRRGossipConfig | None,
    negate: bool,
) -> DRRGossipResult:
    values = np.asarray(values, dtype=float)
    n = values.size
    if n == 0:
        raise ValueError("values must be non-empty")
    rng = make_rng(rng)
    config = config or DRRGossipConfig()
    metrics = MetricsCollector(n=n)
    churn = _pipeline_churn(config, rng)
    work_values = -values if negate else values

    drr = _run_phase_one(n, rng, config, metrics)
    roots = _alive_roots(drr)
    cov = _convergecast(drr, work_values, "max", rng, config, metrics)
    root_of = broadcast_root_addresses(drr, roots, rng, config, metrics)
    gossip = run_gossip_max(
        roots=roots,
        root_values=cov.value_vector(roots),
        root_of=root_of,
        n=n,
        failure_model=config.failure_model,
        rng=rng,
        metrics=metrics,
        gossip_rounds=config.gossip_rounds,
        sampling_rounds=config.sampling_rounds,
        alive=_alive_mask(drr),
        churn=churn,
        backend=config.backend,
    )
    payload, received = _broadcast_estimates(drr, gossip.estimates, rng, config, metrics)
    transform = (lambda x: -x) if negate else None
    return _finalise(
        aggregate, drr, gossip.estimates, payload, received, values, metrics, transform
    )


# --------------------------------------------------------------------------- #
# Algorithm 8: DRR-gossip-ave, plus Sum / Count / Rank reductions
# --------------------------------------------------------------------------- #
def _identify_largest_root(
    drr: DRRResult,
    roots: np.ndarray,
    tree_sizes: np.ndarray,
    root_of: np.ndarray,
    n: int,
    rng: np.random.Generator,
    config: DRRGossipConfig,
    metrics: MetricsCollector,
    churn: ChurnOracle | None = None,
    churn_base_round: int = 0,
) -> tuple[int, int]:
    """Gossip-max on (tree size, root id) so exactly one root learns it is largest.

    The paper runs Gossip-max on the tree sizes; because sizes are integers,
    ties are possible, so we gossip the pair ``(size, root id)`` encoded as
    ``size * (n + 1) + root id`` which is exact in double precision for every
    network size the simulator can hold and makes the winner unique.

    Returns ``(winner, rounds_consumed)``; the caller advances the churn
    clock by the second element.
    """
    encoded = tree_sizes * (n + 1) + roots
    outcome = run_gossip_max(
        roots=roots,
        root_values=encoded.astype(float),
        root_of=root_of,
        n=n,
        failure_model=config.failure_model,
        rng=rng,
        metrics=metrics,
        gossip_rounds=config.gossip_rounds,
        sampling_rounds=config.sampling_rounds,
        phase_name="gossip-max-sizes",
        alive=_alive_mask(drr),
        churn=churn,
        churn_base_round=churn_base_round,
        backend=config.backend,
    )
    # Every root compares the gossiped maximum against its own encoding; the
    # root whose own encoding equals the consensus knows it is the largest.
    consensus = max(outcome.estimates.values())
    winner = int(round(consensus)) % (n + 1)
    if winner not in set(int(r) for r in roots):
        # Extremely lossy runs can garble the consensus; fall back to the
        # true largest tree so the pipeline still returns an answer (the
        # error shows up in the accuracy metrics, not as a crash).
        winner = int(roots[int(np.argmax(encoded))])
    return winner, outcome.gossip_rounds + outcome.sampling_rounds


def _pushsum_pipeline(
    values: np.ndarray,
    aggregate: Aggregate,
    rng: np.random.Generator | int | None,
    config: DRRGossipConfig | None,
    query: float | None = None,
) -> DRRGossipResult:
    """Shared implementation of Average, Sum, Count, and Rank."""
    raw_values = np.asarray(values, dtype=float)
    n = raw_values.size
    if n == 0:
        raise ValueError("values must be non-empty")
    rng = make_rng(rng)
    config = config or DRRGossipConfig()
    metrics = MetricsCollector(n=n)
    churn = _pipeline_churn(config, rng)

    if aggregate == Aggregate.RANK:
        if query is None:
            raise ValueError("rank computation needs a query value")
        work_values = (raw_values <= query).astype(float)
    elif aggregate == Aggregate.COUNT:
        work_values = np.ones(n, dtype=float)
    else:
        work_values = raw_values

    drr = _run_phase_one(n, rng, config, metrics)
    alive = _alive_mask(drr)
    roots = _alive_roots(drr)

    cov = _convergecast(drr, work_values, "sum", rng, config, metrics)
    local_sums = cov.value_vector(roots)
    tree_sizes = cov.weight_vector(roots)
    root_of = broadcast_root_addresses(drr, roots, rng, config, metrics)

    # Phase III runs under one sequential churn clock: gossip-max-sizes,
    # then gossip-ave, then data-spread each advance `churn_base` by the
    # rounds they consumed, so a node's fate at global churn round t is
    # independent of how the budget splits across the procedures.
    largest, churn_base = _identify_largest_root(
        drr, roots, tree_sizes, root_of, n, rng, config, metrics,
        churn=churn, churn_base_round=0,
    )

    if aggregate == Aggregate.AVERAGE:
        weights = tree_sizes
    else:
        # Sum / Count / Rank: push-sum with unit weight at the largest-tree
        # root makes s/w converge to the global total.
        weights = (roots == largest).astype(float)

    ave = run_gossip_ave(
        roots=roots,
        local_sums=local_sums,
        local_weights=weights,
        root_of=root_of,
        n=n,
        failure_model=config.failure_model,
        rng=rng,
        metrics=metrics,
        rounds=config.ave_rounds,
        epsilon=config.epsilon,
        alive=alive,
        trace_root=largest,
        churn=churn,
        churn_base_round=churn_base,
        backend=config.backend,
    )
    churn_base += ave.rounds
    answer = ave.estimate_at(largest)
    if not np.isfinite(answer):
        answer = float(local_sums.sum() / max(1.0, weights.sum()))

    spread = run_data_spread(
        roots=roots,
        spreader=largest,
        value=float(answer),
        root_of=root_of,
        n=n,
        failure_model=config.failure_model,
        rng=rng,
        metrics=metrics,
        gossip_rounds=config.gossip_rounds,
        sampling_rounds=config.sampling_rounds,
        alive=alive,
        churn=churn,
        churn_base_round=churn_base,
        backend=config.backend,
    )
    payload, received = _broadcast_estimates(drr, spread.estimates, rng, config, metrics)

    transform = None
    exact_value = None
    if aggregate == Aggregate.RANK:
        transform = np.round
        exact_value = exact_aggregate(Aggregate.RANK, raw_values[alive], query=query)
    elif aggregate == Aggregate.COUNT:
        transform = np.round
        exact_value = float(alive.sum())
    return _finalise(
        aggregate,
        drr,
        spread.estimates,
        payload,
        received,
        raw_values,
        metrics,
        transform=transform,
        exact_value=exact_value,
    )


def drr_gossip_average(
    values: np.ndarray,
    rng: np.random.Generator | int | None = None,
    config: DRRGossipConfig | None = None,
) -> DRRGossipResult:
    """Compute the global Average at every node (Algorithm 8)."""
    return _pushsum_pipeline(values, Aggregate.AVERAGE, rng, config)


def drr_gossip_sum(
    values: np.ndarray,
    rng: np.random.Generator | int | None = None,
    config: DRRGossipConfig | None = None,
) -> DRRGossipResult:
    """Compute the global Sum at every node."""
    return _pushsum_pipeline(values, Aggregate.SUM, rng, config)


def drr_gossip_count(
    values: np.ndarray,
    rng: np.random.Generator | int | None = None,
    config: DRRGossipConfig | None = None,
) -> DRRGossipResult:
    """Compute the network size (Count) at every node."""
    return _pushsum_pipeline(values, Aggregate.COUNT, rng, config)


def drr_gossip_rank(
    values: np.ndarray,
    query: float,
    rng: np.random.Generator | int | None = None,
    config: DRRGossipConfig | None = None,
) -> DRRGossipResult:
    """Compute the rank of ``query`` (number of values <= query) at every node."""
    return _pushsum_pipeline(values, Aggregate.RANK, rng, config, query=query)


def drr_gossip(
    values: np.ndarray,
    aggregate: Aggregate | str,
    rng: np.random.Generator | int | None = None,
    config: DRRGossipConfig | None = None,
    query: float | None = None,
) -> DRRGossipResult:
    """Dispatch to the pipeline for ``aggregate`` (the generic entry point)."""
    aggregate = Aggregate(aggregate)
    if aggregate == Aggregate.MAX:
        return drr_gossip_max(values, rng, config)
    if aggregate == Aggregate.MIN:
        return drr_gossip_min(values, rng, config)
    if aggregate == Aggregate.AVERAGE:
        return drr_gossip_average(values, rng, config)
    if aggregate == Aggregate.SUM:
        return drr_gossip_sum(values, rng, config)
    if aggregate == Aggregate.COUNT:
        return drr_gossip_count(values, rng, config)
    if aggregate == Aggregate.RANK:
        return drr_gossip_rank(values, query if query is not None else 0.0, rng, config)
    raise ValueError(f"unsupported aggregate {aggregate!r}")  # pragma: no cover
