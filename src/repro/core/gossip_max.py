"""Phase III -- Gossip-max and its sampling procedure (Algorithm 4).

After Phase II every root holds a local aggregate and every node (whp) knows
its root's address.  Gossip-max makes all roots agree on the maximum of the
root values:

* **Gossip procedure** -- for ``O(log n)`` rounds every root picks a node
  uniformly at random from the *whole* network and pushes its current value;
  a non-root that receives the push forwards it to its own root (this is the
  non-address-oblivious step: the forward uses the root address learned in
  Phase II).  Theorem 5: after the gossip procedure a constant fraction of
  the roots -- weighted towards the roots of large trees -- hold the true
  maximum whp.
* **Sampling procedure** -- for ``Theta(log n)`` further rounds every root
  samples a random node, the sample is forwarded to that node's root, and
  the sampled root answers with its current value directly to the inquirer.
  Theorem 6: afterwards *all* roots know the maximum whp.

The implementation operates at message granularity (every push, forward,
inquiry, and reply is counted and individually subject to loss) but is
vectorised over the roots within a round, because Phase III only involves
the ``m = O(n / log n)`` roots plus stateless forwarding by other nodes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..simulator.failures import FailureModel
from ..simulator.message import MessageKind
from ..simulator.metrics import MetricsCollector
from ..simulator.rng import make_rng

__all__ = [
    "GossipMaxResult",
    "default_gossip_rounds",
    "default_sampling_rounds",
    "run_gossip_max",
]


def default_gossip_rounds(n: int, loss_probability: float = 0.0) -> int:
    """Round budget for the gossip procedure.

    Theorem 5 uses ``8 log n / (1 - rho) + log_beta n`` rounds; a budget of
    ``2 log2 n`` plus slack, inflated by the two-hop delivery probability,
    reproduces the whp behaviour at the network sizes the experiments use
    while keeping the constant factors closer to practice.  The paper-exact
    constant is available through ``repro.analysis.theory``.
    """
    rho = 1.0 - (1.0 - loss_probability) ** 2
    base = 1.5 * math.log2(max(2, n)) + 5.0
    return int(math.ceil(base / max(1e-9, 1.0 - rho)))


def default_sampling_rounds(n: int, loss_probability: float = 0.0) -> int:
    """Round budget for the sampling procedure (``(1/c) log n`` in the paper)."""
    rho = 1.0 - (1.0 - loss_probability) ** 2
    base = 0.75 * math.log2(max(2, n)) + 4.0
    return int(math.ceil(base / max(1e-9, 1.0 - rho)))


@dataclass
class GossipMaxResult:
    """Outcome of Gossip-max over the roots.

    Attributes
    ----------
    estimates:
        Mapping root id -> the root's final estimate of the maximum.
    after_gossip_fraction:
        Fraction of roots that already held the true maximum of the *input*
        root values when the gossip procedure ended (the Theorem 5 quantity).
    gossip_rounds / sampling_rounds:
        Rounds used by each sub-procedure.
    metrics:
        Message accounting (phase ``"gossip-max"`` unless overridden).
    """

    estimates: dict[int, float]
    after_gossip_fraction: float
    gossip_rounds: int
    sampling_rounds: int
    metrics: MetricsCollector

    def consensus_value(self) -> float:
        """The value held by the majority of roots (ties broken by max)."""
        values = list(self.estimates.values())
        uniques, counts = np.unique(np.array(values), return_counts=True)
        best = counts.max()
        return float(max(uniques[counts == best]))

    def all_roots_agree(self) -> bool:
        values = set(self.estimates.values())
        return len(values) == 1


def run_gossip_max(
    roots: np.ndarray,
    root_values: np.ndarray,
    root_of: np.ndarray,
    n: int,
    failure_model: FailureModel | None = None,
    rng: np.random.Generator | int | None = None,
    metrics: MetricsCollector | None = None,
    gossip_rounds: int | None = None,
    sampling_rounds: int | None = None,
    phase_name: str = "gossip-max",
    alive: np.ndarray | None = None,
) -> GossipMaxResult:
    """Run Gossip-max (Algorithm 4) over the forest's roots.

    Parameters
    ----------
    roots:
        Array of root node ids (the set V-tilde).
    root_values:
        Initial value of each root, aligned with ``roots``.
    root_of:
        For every node in the network, the id of the root it forwards to, or
        ``-1`` when the node does not know its root (its broadcast message
        was lost) -- pushes landing on such nodes are dropped.
    n:
        Total number of nodes (pushes are addressed uniformly over all of V).
    gossip_rounds / sampling_rounds:
        Round budgets; ``None`` selects the defaults above.
    alive:
        Liveness mask over all n nodes; dead targets swallow messages.
    """
    roots = np.asarray(roots, dtype=np.int64)
    root_values = np.asarray(root_values, dtype=float)
    root_of = np.asarray(root_of, dtype=np.int64)
    if roots.size == 0:
        raise ValueError("gossip-max needs at least one root")
    if root_values.shape != roots.shape:
        raise ValueError("root_values must align with roots")
    if root_of.shape != (n,):
        raise ValueError(f"root_of must have shape ({n},)")

    rng = make_rng(rng)
    failure_model = failure_model or FailureModel()
    metrics = metrics if metrics is not None else MetricsCollector(n=n)
    metrics.begin_phase(phase_name)
    if alive is None:
        alive = np.ones(n, dtype=bool)

    delta = failure_model.loss_probability
    m = roots.size
    # position of each root id in the `roots` array; -1 for non-roots
    position = np.full(n, -1, dtype=np.int64)
    position[roots] = np.arange(m)

    values = root_values.copy()
    true_max = float(values.max())

    g_rounds = gossip_rounds if gossip_rounds is not None else default_gossip_rounds(n, delta)
    s_rounds = sampling_rounds if sampling_rounds is not None else default_sampling_rounds(n, delta)

    def resolve_targets(targets: np.ndarray) -> np.ndarray:
        """Map push targets to receiving root positions (-1 when dropped).

        Accounts for the first-hop loss, the forwarding hop for non-root
        targets (charged only when the first hop arrived), the second-hop
        loss, dead targets, and targets that never learned their root.
        """
        receiver = np.full(targets.shape, -1, dtype=np.int64)
        first_hop_ok = ~failure_model.sample_losses(targets.size, rng) & alive[targets]
        is_root_target = position[targets] >= 0
        # direct hits on a root
        direct = first_hop_ok & is_root_target
        receiver[direct] = position[targets[direct]]
        # forwarded hits through a non-root: only nodes that learned their
        # root's address in Phase II can forward (and only then is the
        # forwarding message charged).
        needs_forward = first_hop_ok & ~is_root_target
        forward_targets = root_of[targets[needs_forward]]
        knows_root = forward_targets >= 0
        metrics.record_messages(MessageKind.FORWARD, int(knows_root.sum()), payload_words=1)
        second_hop_ok = ~failure_model.sample_losses(int(needs_forward.sum()), rng)
        ok = knows_root & second_hop_ok
        ok_targets = forward_targets[ok]
        ok_alive = alive[ok_targets]
        idx = np.flatnonzero(needs_forward)[ok][ok_alive]
        receiver[idx] = position[forward_targets[ok][ok_alive]]
        return receiver

    # ------------------------------------------------------------------ #
    # gossip procedure
    # ------------------------------------------------------------------ #
    for _ in range(g_rounds):
        metrics.record_round()
        targets = rng.integers(0, n, size=m)
        metrics.record_messages(MessageKind.GOSSIP, m, payload_words=1)
        receivers = resolve_targets(targets)
        valid = receivers >= 0
        if valid.any():
            np.maximum.at(values, receivers[valid], values[valid])

    after_gossip_fraction = float(np.mean(values >= true_max))

    # ------------------------------------------------------------------ #
    # sampling procedure
    # ------------------------------------------------------------------ #
    for _ in range(s_rounds):
        metrics.record_round()
        targets = rng.integers(0, n, size=m)
        metrics.record_messages(MessageKind.INQUIRY, m, payload_words=1)
        sampled_roots = resolve_targets(targets)
        valid = sampled_roots >= 0
        # The sampled root answers the inquiring root directly (one hop).
        metrics.record_messages(MessageKind.INQUIRY_REPLY, int(valid.sum()), payload_words=1)
        reply_ok = ~failure_model.sample_losses(int(valid.sum()), rng)
        inquirers = np.flatnonzero(valid)[reply_ok]
        answered_by = sampled_roots[valid][reply_ok]
        if inquirers.size:
            values[inquirers] = np.maximum(values[inquirers], values[answered_by])

    estimates = {int(root): float(values[pos]) for pos, root in enumerate(roots)}
    return GossipMaxResult(
        estimates=estimates,
        after_gossip_fraction=after_gossip_fraction,
        gossip_rounds=g_rounds,
        sampling_rounds=s_rounds,
        metrics=metrics,
    )
