"""Phase III -- Gossip-max and its sampling procedure (Algorithm 4).

After Phase II every root holds a local aggregate and every node (whp) knows
its root's address.  Gossip-max makes all roots agree on the maximum of the
root values:

* **Gossip procedure** -- for ``O(log n)`` rounds every root picks a node
  uniformly at random from the *whole* network and pushes its current value;
  a non-root that receives the push forwards it to its own root (this is the
  non-address-oblivious step: the forward uses the root address learned in
  Phase II).  Theorem 5: after the gossip procedure a constant fraction of
  the roots -- weighted towards the roots of large trees -- hold the true
  maximum whp.
* **Sampling procedure** -- for ``Theta(log n)`` further rounds every root
  samples a random node, the sample is forwarded to that node's root, and
  the sampled root answers with its current value directly to the inquirer.
  Theorem 6: afterwards *all* roots know the maximum whp.

Backends (the ``backend`` argument):

* ``"vectorized"`` operates at message granularity (every push, forward,
  inquiry, and reply is counted and individually subject to loss) but is
  batched over the roots within a round, through the substrate's shared
  two-hop relay primitive.
* ``"engine"`` runs :class:`GossipMaxRootNode` machines on the roots and
  :class:`RootForwarderNode` machines on everyone else; pushes, forwards,
  inquiries, and replies are individual messages on the synchronous engine.

Both backends draw the per-round push targets in root-id order from the
shared generator, so on a reliable network they agree exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..simulator.failures import ChurnOracle, FailureModel, LossOracle
from ..simulator.message import Message, MessageKind, Send
from ..simulator.metrics import MetricsCollector
from ..simulator.node import ProtocolNode, RoundContext
from ..simulator.rng import make_rng
from ..substrate import EngineKernel, VectorizedKernel, run_on

__all__ = [
    "GossipMaxResult",
    "GossipMaxRootNode",
    "RootForwarderNode",
    "default_gossip_rounds",
    "default_sampling_rounds",
    "run_gossip_max",
]


def default_gossip_rounds(n: int, loss_probability: float = 0.0) -> int:
    """Round budget for the gossip procedure.

    Theorem 5 uses ``8 log n / (1 - rho) + log_beta n`` rounds; a budget of
    ``2 log2 n`` plus slack, inflated by the two-hop delivery probability,
    reproduces the whp behaviour at the network sizes the experiments use
    while keeping the constant factors closer to practice.  The paper-exact
    constant is available through ``repro.analysis.theory``.
    """
    rho = 1.0 - (1.0 - loss_probability) ** 2
    base = 1.5 * math.log2(max(2, n)) + 5.0
    return int(math.ceil(base / max(1e-9, 1.0 - rho)))


def default_sampling_rounds(n: int, loss_probability: float = 0.0) -> int:
    """Round budget for the sampling procedure (``(1/c) log n`` in the paper)."""
    rho = 1.0 - (1.0 - loss_probability) ** 2
    base = 0.75 * math.log2(max(2, n)) + 4.0
    return int(math.ceil(base / max(1e-9, 1.0 - rho)))


@dataclass
class GossipMaxResult:
    """Outcome of Gossip-max over the roots.

    Attributes
    ----------
    estimates:
        Mapping root id -> the root's final estimate of the maximum.
    after_gossip_fraction:
        Fraction of roots that already held the true maximum of the *input*
        root values when the gossip procedure ended (the Theorem 5 quantity).
    gossip_rounds / sampling_rounds:
        Rounds used by each sub-procedure.
    metrics:
        Message accounting (phase ``"gossip-max"`` unless overridden).
    """

    estimates: dict[int, float]
    after_gossip_fraction: float
    gossip_rounds: int
    sampling_rounds: int
    metrics: MetricsCollector

    def consensus_value(self) -> float:
        """The value held by the majority of roots (ties broken by max)."""
        values = list(self.estimates.values())
        uniques, counts = np.unique(np.array(values), return_counts=True)
        best = counts.max()
        return float(max(uniques[counts == best]))

    def all_roots_agree(self) -> bool:
        values = set(self.estimates.values())
        return len(values) == 1


def run_gossip_max(
    roots: np.ndarray,
    root_values: np.ndarray,
    root_of: np.ndarray,
    n: int,
    failure_model: FailureModel | None = None,
    rng: np.random.Generator | int | None = None,
    metrics: MetricsCollector | None = None,
    gossip_rounds: int | None = None,
    sampling_rounds: int | None = None,
    phase_name: str = "gossip-max",
    alive: np.ndarray | None = None,
    churn: ChurnOracle | None = None,
    churn_base_round: int = 0,
    backend: str = "vectorized",
) -> GossipMaxResult:
    """Run Gossip-max (Algorithm 4) over the forest's roots.

    Parameters
    ----------
    roots:
        Array of root node ids (the set V-tilde).
    root_values:
        Initial value of each root, aligned with ``roots``.
    root_of:
        For every node in the network, the id of the root it forwards to, or
        ``-1`` when the node does not know its root (its broadcast message
        was lost) -- pushes landing on such nodes are dropped.
    n:
        Total number of nodes (pushes are addressed uniformly over all of V).
    gossip_rounds / sampling_rounds:
        Round budgets; ``None`` selects the defaults above.
    alive:
        Liveness mask over all n nodes; dead targets swallow messages.  Under
        churn the array is evolved **in place** so multi-procedure pipelines
        observe the deaths of earlier procedures.
    churn:
        Mid-run churn oracle (``None`` auto-derives one from
        ``failure_model`` when it carries churn).  Root-relay procedures are
        crash-only: a revived root would have missed rounds of mass flow, so
        join events are rejected here.  ``churn_base_round`` offsets this
        procedure's rounds in the oracle's identity space (the pipeline runs
        several procedures under one churn clock).
    backend:
        Substrate backend: ``"vectorized"`` (default), ``"sharded"``, or ``"engine"``.
    """
    roots = np.asarray(roots, dtype=np.int64)
    root_values = np.asarray(root_values, dtype=float)
    root_of = np.asarray(root_of, dtype=np.int64)
    if roots.size == 0:
        raise ValueError("gossip-max needs at least one root")
    if root_values.shape != roots.shape:
        raise ValueError("root_values must align with roots")
    if root_of.shape != (n,):
        raise ValueError(f"root_of must have shape ({n},)")

    rng = make_rng(rng)
    failure_model = failure_model or FailureModel()
    metrics = metrics if metrics is not None else MetricsCollector(n=n)
    metrics.begin_phase(phase_name)
    if alive is None:
        alive = np.ones(n, dtype=bool)
    oracle = LossOracle.for_run(failure_model, rng)
    if churn is None:
        churn = ChurnOracle.for_run(failure_model, rng)
    if churn is not None and churn.has_joins:
        raise ValueError(
            "gossip-max is crash-only under churn: a revived root would have "
            "missed rounds of push flow (set join_rate=0 and use no join "
            "schedule events, or run the epoch-gossip-ave protocol instead)"
        )

    delta = failure_model.loss_probability
    g_rounds = gossip_rounds if gossip_rounds is not None else default_gossip_rounds(n, delta)
    s_rounds = sampling_rounds if sampling_rounds is not None else default_sampling_rounds(n, delta)

    return run_on(
        backend,
        vectorized=lambda kernel: _gossip_max_vectorized(
            kernel, roots, root_values, root_of, n, oracle, rng, metrics,
            g_rounds, s_rounds, alive, churn, churn_base_round,
        ),
        engine=lambda kernel: _gossip_max_engine(
            kernel, roots, root_values, root_of, n, failure_model, oracle, rng, metrics,
            g_rounds, s_rounds, alive, churn, churn_base_round,
        ),
    )


# --------------------------------------------------------------------------- #
# vectorized (columnar) backend
# --------------------------------------------------------------------------- #
def _gossip_max_vectorized(
    kernel: VectorizedKernel,
    roots: np.ndarray,
    root_values: np.ndarray,
    root_of: np.ndarray,
    n: int,
    oracle: LossOracle,
    rng: np.random.Generator,
    metrics: MetricsCollector,
    g_rounds: int,
    s_rounds: int,
    alive: np.ndarray,
    churn: ChurnOracle | None,
    churn_base_round: int,
) -> GossipMaxResult:
    m = roots.size
    # position of each root id in the `roots` array; -1 for non-roots
    position = np.full(n, -1, dtype=np.int64)
    position[roots] = np.arange(m)
    # Under churn the mask changes every round, so the None fast path (and
    # its hash-free reliable delivery) is only taken on static-membership
    # runs; dead-target accounting likewise only exists under churn.
    alive_arg = alive if churn is not None else (None if alive.all() else alive)
    dead_targets = churn is not None

    values = root_values.copy()
    true_max = float(values.max())

    # ------------------------------------------------------------------ #
    # gossip procedure
    # ------------------------------------------------------------------ #
    for r in range(g_rounds):
        if churn is not None:
            died, joined = churn.step(churn_base_round + r, alive)
            if died.size or joined.size:
                kernel.refresh_alive(alive)
            send_pos = np.flatnonzero(alive[roots])
        else:
            send_pos = None
        metrics.record_round()
        # Only live roots push; the live subset preserves root order, so the
        # engine (which draws per alive node in id order) consumes the RNG
        # identically.  Dead roots' values freeze.
        senders = roots if send_pos is None else roots[send_pos]
        targets = kernel.sample_uniform(rng, n, senders.size)
        receivers = kernel.relay_to_roots(
            metrics, oracle, targets, senders=senders, round_index=r,
            kind=MessageKind.GOSSIP, position=position, root_of=root_of,
            alive=alive_arg, dead_targets=dead_targets,
        )
        valid = receivers >= 0
        if valid.any():
            pushed = values[valid] if send_pos is None else values[send_pos[valid]]
            np.maximum.at(values, receivers[valid], pushed)

    after_gossip_fraction = float(np.mean(values >= true_max))

    # ------------------------------------------------------------------ #
    # sampling procedure
    # ------------------------------------------------------------------ #
    for t in range(s_rounds):
        r = g_rounds + t
        if churn is not None:
            died, joined = churn.step(churn_base_round + r, alive)
            if died.size or joined.size:
                kernel.refresh_alive(alive)
            send_pos = np.flatnonzero(alive[roots])
        else:
            send_pos = None
        metrics.record_round()
        senders = roots if send_pos is None else roots[send_pos]
        targets = kernel.sample_uniform(rng, n, senders.size)
        sampled_roots = kernel.relay_to_roots(
            metrics, oracle, targets, senders=senders, round_index=r,
            kind=MessageKind.INQUIRY, position=position, root_of=root_of,
            alive=alive_arg, dead_targets=dead_targets,
        )
        valid = sampled_roots >= 0
        valid_idx = np.flatnonzero(valid)
        inquirer_pos = valid_idx if send_pos is None else send_pos[valid_idx]
        # The sampled root answers the inquiring root directly (one hop).
        reply_ok = kernel.deliver(
            metrics, oracle, MessageKind.INQUIRY_REPLY,
            roots[inquirer_pos],
            senders=roots[sampled_roots[valid]], round_index=r,
            alive=alive_arg, dead_targets=dead_targets,
        )
        inquirers = inquirer_pos[reply_ok]
        answered_by = sampled_roots[valid][reply_ok]
        if inquirers.size:
            values[inquirers] = np.maximum(values[inquirers], values[answered_by])

    # tolist() materialises Python scalars in one C pass (the per-element
    # int()/float() dictcomp was a visible cost at hundreds of thousands
    # of roots)
    estimates = dict(zip(roots.tolist(), values.tolist()))
    return GossipMaxResult(
        estimates=estimates,
        after_gossip_fraction=after_gossip_fraction,
        gossip_rounds=g_rounds,
        sampling_rounds=s_rounds,
        metrics=metrics,
    )


# --------------------------------------------------------------------------- #
# engine (message-level) backend
# --------------------------------------------------------------------------- #
class RootForwarderNode(ProtocolNode):
    """A non-root node in Phase III: forwards pushes/inquiries to its root.

    The forward re-wraps the original message under the FORWARD kind,
    preserving its payload (and payload width) plus an ``inner`` tag so the
    root can tell a relayed push from a relayed inquiry.  Nodes that never
    learned their root's address in Phase II (``root < 0``) silently drop.
    """

    def __init__(self, node_id: int, root: int) -> None:
        super().__init__(node_id)
        self.root = int(root)

    def on_messages(self, ctx: RoundContext, messages: list[Message]) -> list[Send]:
        if self.root < 0:
            return []
        forwards: list[Send] = []
        for message in messages:
            if message.kind in (MessageKind.GOSSIP.value, MessageKind.INQUIRY.value):
                forwards.append(
                    Send(
                        recipient=self.root,
                        kind=MessageKind.FORWARD,
                        payload={**message.payload, "inner": message.kind},
                        payload_words=message.payload_words,
                        # All of a round's forwards go to the same root; the
                        # send rank disambiguates them for the loss oracle
                        # (the vectorized relay numbers them identically, in
                        # push order).
                        nonce=len(forwards),
                    )
                )
        return forwards

    def is_complete(self) -> bool:
        return True


class GossipMaxRootNode(ProtocolNode):
    """A root in Gossip-max: pushes for ``g`` rounds, then samples for ``s``.

    Replies to inquiries carry the value the root held at the *start* of the
    round (the synchronous-model semantics the vectorized kernel implements:
    all of a round's exchanges are based on the pre-round state).
    """

    def __init__(self, node_id: int, value: float, gossip_rounds: int, sampling_rounds: int) -> None:
        super().__init__(node_id)
        self.value = float(value)
        self.gossip_rounds = int(gossip_rounds)
        self.sampling_rounds = int(sampling_rounds)
        self.rounds_done = 0
        self.round_value = float(value)
        self.value_after_gossip: float | None = None

    def begin_round(self, ctx: RoundContext) -> list[Send]:
        self.round_value = self.value
        r = ctx.round_index
        if r == self.gossip_rounds and self.value_after_gossip is None:
            self.value_after_gossip = self.value
        if r < self.gossip_rounds:
            self.rounds_done += 1
            return [
                Send(
                    recipient=ctx.random_node(),
                    kind=MessageKind.GOSSIP,
                    payload={"value": self.value},
                    payload_words=1,
                )
            ]
        if r < self.gossip_rounds + self.sampling_rounds:
            self.rounds_done += 1
            return [
                Send(
                    recipient=ctx.random_node(),
                    kind=MessageKind.INQUIRY,
                    payload={"origin": self.node_id},
                    payload_words=1,
                )
            ]
        return []

    def on_messages(self, ctx: RoundContext, messages: list[Message]) -> list[Send]:
        replies: list[Send] = []
        for message in messages:
            inner = message.get("inner", message.kind)
            if inner == MessageKind.GOSSIP.value:
                self.value = max(self.value, float(message.get("value")))
            elif inner == MessageKind.INQUIRY.value:
                replies.append(
                    Send(
                        recipient=int(message.get("origin")),
                        kind=MessageKind.INQUIRY_REPLY,
                        payload={"value": self.round_value},
                        payload_words=1,
                    )
                )
            elif message.kind == MessageKind.INQUIRY_REPLY.value:
                self.value = max(self.value, float(message.get("value")))
        return replies

    def is_complete(self) -> bool:
        return self.rounds_done >= self.gossip_rounds + self.sampling_rounds

    def result(self) -> float:
        return self.value


def _gossip_max_engine(
    kernel: EngineKernel,
    roots: np.ndarray,
    root_values: np.ndarray,
    root_of: np.ndarray,
    n: int,
    failure_model: FailureModel,
    oracle: LossOracle,
    rng: np.random.Generator,
    metrics: MetricsCollector,
    g_rounds: int,
    s_rounds: int,
    alive: np.ndarray,
    churn: ChurnOracle | None,
    churn_base_round: int,
) -> GossipMaxResult:
    is_root = np.zeros(n, dtype=bool)
    is_root[roots] = True
    by_root = {int(r): float(v) for r, v in zip(roots, root_values)}
    nodes: list[ProtocolNode] = [
        GossipMaxRootNode(i, by_root[i], g_rounds, s_rounds)
        if is_root[i]
        else RootForwarderNode(i, int(root_of[i]))
        for i in range(n)
    ]
    # Four sub-steps: push/inquiry, forward, and (sampling only) the reply
    # all complete within the round they were initiated.  Under crash-only
    # churn the dead are excluded from the completion check, so the live
    # roots still terminate the run exactly at g + s rounds.
    outcome = kernel.run(
        nodes,
        rng=rng,
        metrics=metrics,
        failure_model=failure_model,
        alive=alive,
        loss_oracle=oracle,
        churn_oracle=churn,
        churn_base_round=churn_base_round,
        max_substeps=4,
        max_rounds=g_rounds + s_rounds + 4,
        # If churn kills *every* root mid-run the survivors are all
        # forwarders (trivially complete) and the engine would stop early;
        # the vectorized loop always runs its full budget, so pin the round
        # count under churn.
        stop_condition=(
            (lambda nodes, r: r >= g_rounds + s_rounds) if churn is not None else None
        ),
    )
    if outcome.final_alive is not None:
        # The network evolves a copy; mirror the deaths back into the
        # caller's mask so both backends leave it in the same state.
        alive[:] = outcome.final_alive

    true_max = float(root_values.max())
    estimates: dict[int, float] = {}
    after_gossip: list[float] = []
    for root in roots:
        node = nodes[int(root)]
        estimates[int(root)] = float(node.value)
        snapshot = node.value_after_gossip if node.value_after_gossip is not None else node.value
        after_gossip.append(float(snapshot))
    after_gossip_fraction = float(np.mean(np.asarray(after_gossip) >= true_max))
    return GossipMaxResult(
        estimates=estimates,
        after_gossip_fraction=after_gossip_fraction,
        gossip_rounds=g_rounds,
        sampling_rounds=s_rounds,
        metrics=metrics,
    )
