"""Aggregate functions the paper computes and their exact references.

The paper's protocols compute "the common aggregates (such as Min, Max,
Count, Sum, Average, Rank etc.)" (Section 1.2).  This module defines the
aggregate kinds, exact (centralised) reference implementations used to judge
protocol output, and the error criteria used throughout the analysis:

* Max / Min / Count / Sum / Rank are exact aggregates -- a protocol either
  returns the right value or it does not;
* Average (and Sum when computed through push-sum) converges geometrically,
  so it is judged by relative error, with the paper's fallback to absolute
  error when the true average is zero (end of Section 3.3.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "Aggregate",
    "exact_aggregate",
    "relative_error",
    "estimate_error",
    "AggregateSpec",
    "AGGREGATE_SPECS",
]


class Aggregate(str, enum.Enum):
    """The aggregate functions supported by the DRR-gossip pipelines."""

    MAX = "max"
    MIN = "min"
    SUM = "sum"
    COUNT = "count"
    AVERAGE = "average"
    #: Rank of a distinguished query value: the number of node values that
    #: are <= the query.  Computed as a Sum of indicator values, which is how
    #: the paper's "Rank" reduces to its Sum/Count machinery.
    RANK = "rank"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class AggregateSpec:
    """How an aggregate is computed and judged.

    Attributes
    ----------
    kind:
        The aggregate.
    exact_fn:
        Centralised reference computation over the full value vector.
    is_exact:
        True when the protocol is expected to return the value exactly
        (Max/Min/Count/Sum-via-convergecast/Rank); False when it converges
        with bounded relative error (Average, push-sum style Sum).
    """

    kind: Aggregate
    exact_fn: Callable[[np.ndarray], float]
    is_exact: bool


def _count(values: np.ndarray) -> float:
    return float(values.size)


AGGREGATE_SPECS: dict[Aggregate, AggregateSpec] = {
    Aggregate.MAX: AggregateSpec(Aggregate.MAX, lambda v: float(np.max(v)), True),
    Aggregate.MIN: AggregateSpec(Aggregate.MIN, lambda v: float(np.min(v)), True),
    Aggregate.SUM: AggregateSpec(Aggregate.SUM, lambda v: float(np.sum(v)), False),
    Aggregate.COUNT: AggregateSpec(Aggregate.COUNT, _count, False),
    Aggregate.AVERAGE: AggregateSpec(Aggregate.AVERAGE, lambda v: float(np.mean(v)), False),
    Aggregate.RANK: AggregateSpec(Aggregate.RANK, lambda v: float(np.sum(v <= 0.0)), True),
}


def exact_aggregate(kind: Aggregate, values: np.ndarray, query: float | None = None) -> float:
    """Exact value of an aggregate over ``values``.

    ``query`` is only used for :attr:`Aggregate.RANK`, where it is the value
    whose rank (number of node values <= query) is requested.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot aggregate an empty value vector")
    if kind == Aggregate.RANK:
        if query is None:
            raise ValueError("Aggregate.RANK needs a query value")
        return float(np.sum(values <= query))
    return AGGREGATE_SPECS[Aggregate(kind)].exact_fn(values)


def relative_error(estimate: float, truth: float, absolute_fallback: bool = True) -> float:
    """The paper's error criterion for convergent aggregates.

    ``|estimate - truth| / |truth|`` when the truth is non-zero; when the
    truth is zero the paper switches to the absolute criterion
    ``|estimate|`` (Section 3.3.2, last paragraph), which
    ``absolute_fallback`` enables.
    """
    if truth != 0.0:
        return abs(estimate - truth) / abs(truth)
    if absolute_fallback:
        return abs(estimate)
    return float("inf") if estimate != 0.0 else 0.0


def estimate_error(kind: Aggregate, estimates: np.ndarray, values: np.ndarray, query: float | None = None) -> np.ndarray:
    """Per-node error of a vector of estimates against the exact aggregate.

    Exact aggregates report ``0.0`` where correct and ``1.0`` where wrong
    (so the mean is the fraction of wrong nodes); convergent aggregates
    report the relative error at each node.
    """
    estimates = np.asarray(estimates, dtype=float)
    truth = exact_aggregate(kind, values, query=query)
    spec = AGGREGATE_SPECS[Aggregate(kind)]
    if spec.is_exact:
        return (estimates != truth).astype(float)
    return np.array([relative_error(float(e), truth) for e in estimates])
