"""The paper's contribution: DRR, Local-DRR, convergecast, gossip, DRR-gossip."""

from .aggregates import (
    AGGREGATE_SPECS,
    Aggregate,
    AggregateSpec,
    estimate_error,
    exact_aggregate,
    relative_error,
)
from .convergecast import (
    BroadcastResult,
    ConvergecastResult,
    run_broadcast,
    run_convergecast,
)
from .data_spread import run_data_spread
from .drr import DRRNode, DRRResult, default_probe_budget, run_drr
from .drr_gossip import (
    DRRGossipConfig,
    DRRGossipResult,
    broadcast_root_addresses,
    drr_gossip,
    drr_gossip_average,
    drr_gossip_count,
    drr_gossip_max,
    drr_gossip_min,
    drr_gossip_rank,
    drr_gossip_sum,
)
from .forest import Forest, ForestInvariantError
from .gossip_ave import GossipAveResult, default_ave_rounds, run_gossip_ave
from .gossip_max import (
    GossipMaxResult,
    default_gossip_rounds,
    default_sampling_rounds,
    run_gossip_max,
)
from .local_drr import run_local_drr

__all__ = [
    "AGGREGATE_SPECS",
    "Aggregate",
    "AggregateSpec",
    "estimate_error",
    "exact_aggregate",
    "relative_error",
    "BroadcastResult",
    "ConvergecastResult",
    "run_broadcast",
    "run_convergecast",
    "run_data_spread",
    "DRRNode",
    "DRRResult",
    "default_probe_budget",
    "run_drr",
    "DRRGossipConfig",
    "DRRGossipResult",
    "broadcast_root_addresses",
    "drr_gossip",
    "drr_gossip_average",
    "drr_gossip_count",
    "drr_gossip_max",
    "drr_gossip_min",
    "drr_gossip_rank",
    "drr_gossip_sum",
    "Forest",
    "ForestInvariantError",
    "GossipAveResult",
    "default_ave_rounds",
    "run_gossip_ave",
    "GossipMaxResult",
    "default_gossip_rounds",
    "default_sampling_rounds",
    "run_gossip_max",
    "run_local_drr",
]
