"""Local-DRR -- the ranking scheme for sparse networks (Section 4).

On an arbitrary undirected graph, point-to-point calls between random pairs
are not available; instead the standard message-passing assumption holds: a
node can send (possibly different) messages to *all* of its neighbours in one
round.  Local-DRR exploits it:

1. every node draws a rank uniformly at random from [0, 1];
2. every node exchanges its rank with all neighbours (one round, two messages
   per edge);
3. every node whose highest-ranked neighbour out-ranks it connects to that
   neighbour (one connection message); a node that out-ranks all of its
   neighbours becomes a root.

The output is a forest with the properties the paper proves:

* height of every tree is ``O(log n)`` whp on any graph (Theorem 11);
* the number of trees concentrates around ``sum_i 1/(d_i + 1)`` (Theorem 13),
  i.e. ``O(n/d)`` on d-regular graphs.

Phase I therefore costs ``O(1)`` rounds and ``O(|E|)`` messages, and the rest
of DRR-gossip proceeds as before with a routing protocol supplying random
peers (Theorem 14).

:func:`run_local_drr` is the single entry point; like every other protocol in
the repository it takes a ``backend`` argument:

* ``"vectorized"`` -- the columnar topology kernel: the round of rank
  announcements is one batch over the graph's directed edge arrays
  (CSR-backed, see :meth:`repro.topology.base.Topology.edge_arrays`), the
  connect round one batch over the chosen child->parent pairs.  Handles
  ``n = 10^6`` sparse graphs in seconds.
* ``"engine"`` -- per-node :class:`LocalDRRNode` state machines on the
  :class:`~repro.simulator.engine.SynchronousEngine` in the message-passing
  model (``calls_per_round`` = degree), every rank announcement an
  individual message.

Both backends draw ranks and crash masks in the shared preamble and decide
per-edge message loss through the identity-keyed loss oracle, so they
produce the identical forest, connect mask, rounds, and message accounting
for the same seed on reliable *and* lossy networks.  When the best
out-ranking neighbour is tied (possible with externally supplied integer
ranks), both pick the smallest node id among the maxima.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..simulator.failures import FailureModel, LossOracle
from ..simulator.message import Message, MessageKind, Send
from ..simulator.metrics import MetricsCollector
from ..simulator.node import ProtocolNode, RoundContext
from ..simulator.rng import make_rng
from ..substrate import EngineKernel, VectorizedKernel, neighbor_broadcast, run_on
from ..topology.base import Topology
from .drr import DRRResult
from .forest import Forest

__all__ = ["LocalDRRNode", "run_local_drr"]


def run_local_drr(
    topology: Topology,
    rng: np.random.Generator | int | None = None,
    failure_model: FailureModel | None = None,
    metrics: MetricsCollector | None = None,
    ranks: np.ndarray | None = None,
    alive: np.ndarray | None = None,
    backend: str = "vectorized",
) -> DRRResult:
    """Run Local-DRR over ``topology`` and return the ranking forest.

    The result uses the same :class:`~repro.core.drr.DRRResult` container as
    complete-graph DRR so Phase II (convergecast / broadcast) is reused
    unchanged.

    Failure semantics: a lost rank-exchange message means the recipient does
    not know that neighbour's rank and simply ignores it when choosing a
    parent; a lost connection message leaves the parent unaware of the child
    exactly as in complete-graph DRR.
    """
    n = topology.n
    rng = make_rng(rng)
    failure_model = failure_model or FailureModel()
    metrics = metrics if metrics is not None else MetricsCollector(n=n)
    metrics.begin_phase("local-drr")

    # Shared preamble: crash sampling, rank drawing, and loss-oracle key
    # derivation happen exactly once, before backend dispatch.
    if alive is None:
        alive = ~failure_model.sample_crashes(n, rng)
    alive = np.asarray(alive, dtype=bool)
    if ranks is None:
        ranks = rng.random(n)
    else:
        ranks = np.asarray(ranks, dtype=float)
        if ranks.shape != (n,):
            raise ValueError("ranks must have shape (n,)")
    oracle = LossOracle.for_run(failure_model, rng)

    return run_on(
        backend,
        vectorized=lambda kernel: _local_drr_vectorized(
            kernel, topology, oracle, alive, ranks, metrics
        ),
        engine=lambda kernel: _local_drr_engine(
            kernel, topology, failure_model, oracle, rng, alive, ranks, metrics
        ),
    )


# --------------------------------------------------------------------------- #
# vectorized (columnar topology kernel) backend
# --------------------------------------------------------------------------- #
def _local_drr_vectorized(
    kernel: VectorizedKernel,
    topology: Topology,
    oracle: LossOracle,
    alive: np.ndarray,
    ranks: np.ndarray,
    metrics: MetricsCollector,
) -> DRRResult:
    n = topology.n
    parent = np.full(n, -1, dtype=np.int64)
    connect_delivered = np.zeros(n, dtype=bool)
    degrees = topology.degrees()

    # Round 1: every alive node announces its rank over every incident edge;
    # one neighbour-broadcast batch over the directed edge arrays.
    src, dst, delivered = neighbor_broadcast(
        metrics, oracle, MessageKind.RANK, topology,
        senders_alive=alive, round_index=0, alive=alive, payload_words=1,
    )
    # What each alive node learned, and its choice of parent: the delivered
    # out-ranking announcement with the highest rank (smallest sender id on
    # ties, matching the engine's first-strict-improvement scan).
    heard = delivered & (ranks[src] > ranks[dst])
    cand_from, cand_to = src[heard], dst[heard]
    if cand_to.size:
        order = np.lexsort((cand_from, -ranks[cand_from], cand_to))
        best = order[np.r_[True, cand_to[order][1:] != cand_to[order][:-1]]]
        children = cand_to[best]
        parent[children] = cand_from[best]
        # Round 2: one connection message per attaching node.
        connect_delivered[children] = kernel.deliver(
            metrics, oracle, MessageKind.CONNECT, cand_from[best],
            senders=children, round_index=1, alive=alive, payload_words=1,
        )

    metrics.record_round(2)
    forest = Forest(parent=parent, rank=ranks, alive=alive)
    forest.validate()
    return DRRResult(
        forest=forest,
        connect_delivered=connect_delivered,
        probes=degrees.astype(np.int64),
        rounds=2,
        metrics=metrics,
    )


# --------------------------------------------------------------------------- #
# engine (message-level) backend
# --------------------------------------------------------------------------- #
class LocalDRRNode(ProtocolNode):
    """Per-node Local-DRR state machine (message-passing model).

    Round 0 broadcasts the node's rank to all neighbours; round 1 sends one
    CONNECT to the best out-ranking neighbour heard (if any).
    """

    def __init__(self, node_id: int, rank: float, neighbors: Sequence[int]) -> None:
        super().__init__(node_id)
        self.rank = float(rank)
        self.neighbors = [int(v) for v in neighbors]
        self.calls_per_round = max(1, len(self.neighbors))
        self.best_rank = self.rank
        self.best_neighbor = -1
        self.parent: int | None = None
        self.children: list[int] = []
        self._rounds_seen = -1

    def begin_round(self, ctx: RoundContext) -> list[Send]:
        self._rounds_seen = ctx.round_index
        if ctx.round_index == 0:
            return [
                Send(recipient=neighbor, kind=MessageKind.RANK, payload={"rank": self.rank})
                for neighbor in self.neighbors
            ]
        if ctx.round_index == 1 and self.best_neighbor >= 0:
            self.parent = self.best_neighbor
            return [
                Send(
                    recipient=self.best_neighbor,
                    kind=MessageKind.CONNECT,
                    payload={"child": self.node_id},
                )
            ]
        return []

    def on_messages(self, ctx: RoundContext, messages: list[Message]) -> list[Send]:
        for message in messages:
            if message.kind == MessageKind.RANK.value:
                rank = float(message.get("rank"))
                if rank > self.best_rank:
                    self.best_rank = rank
                    self.best_neighbor = message.sender
            elif message.kind == MessageKind.CONNECT.value:
                child = int(message.get("child", message.sender))
                if child not in self.children:
                    self.children.append(child)
        return []

    def is_complete(self) -> bool:
        return self._rounds_seen >= 1

    def result(self) -> dict:
        return {"parent": self.parent, "children": tuple(sorted(self.children))}


def _local_drr_engine(
    kernel: EngineKernel,
    topology: Topology,
    failure_model: FailureModel,
    oracle: LossOracle,
    rng: np.random.Generator,
    alive: np.ndarray,
    ranks: np.ndarray,
    metrics: MetricsCollector,
) -> DRRResult:
    n = topology.n
    nodes = [LocalDRRNode(i, float(ranks[i]), topology.neighbors(i)) for i in range(n)]
    outcome = kernel.run(
        nodes,
        rng=rng,
        metrics=metrics,
        failure_model=failure_model,
        alive=alive,
        neighbor_fn=topology.neighbors,
        loss_oracle=oracle,
        max_substeps=2,
        max_rounds=4,
        strict=False,
    )

    parent = np.full(n, -1, dtype=np.int64)
    connect_delivered = np.zeros(n, dtype=bool)
    for node in nodes:
        if node.parent is not None:
            parent[node.node_id] = node.parent
        for child in node.children:
            connect_delivered[child] = True

    forest = Forest(parent=parent, rank=ranks, alive=alive)
    forest.validate()
    return DRRResult(
        forest=forest,
        connect_delivered=connect_delivered,
        probes=topology.degrees().astype(np.int64),
        rounds=outcome.rounds,
        metrics=metrics,
    )
