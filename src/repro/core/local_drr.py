"""Local-DRR -- the ranking scheme for sparse networks (Section 4).

On an arbitrary undirected graph, point-to-point calls between random pairs
are not available; instead the standard message-passing assumption holds: a
node can send (possibly different) messages to *all* of its neighbours in one
round.  Local-DRR exploits it:

1. every node draws a rank uniformly at random from [0, 1];
2. every node exchanges its rank with all neighbours (one round, two messages
   per edge);
3. every node whose highest-ranked neighbour out-ranks it connects to that
   neighbour (one connection message); a node that out-ranks all of its
   neighbours becomes a root.

The output is a forest with the properties the paper proves:

* height of every tree is ``O(log n)`` whp on any graph (Theorem 11);
* the number of trees concentrates around ``sum_i 1/(d_i + 1)`` (Theorem 13),
  i.e. ``O(n/d)`` on d-regular graphs.

Phase I therefore costs ``O(1)`` rounds and ``O(|E|)`` messages, and the rest
of DRR-gossip proceeds as before with a routing protocol supplying random
peers (Theorem 14).
"""

from __future__ import annotations

import numpy as np

from ..simulator.failures import FailureModel
from ..simulator.message import MessageKind
from ..simulator.metrics import MetricsCollector
from ..simulator.rng import make_rng
from ..topology.base import Topology
from .drr import DRRResult
from .forest import Forest

__all__ = ["run_local_drr"]


def run_local_drr(
    topology: Topology,
    rng: np.random.Generator | int | None = None,
    failure_model: FailureModel | None = None,
    metrics: MetricsCollector | None = None,
    ranks: np.ndarray | None = None,
    alive: np.ndarray | None = None,
) -> DRRResult:
    """Run Local-DRR over ``topology`` and return the ranking forest.

    The result uses the same :class:`~repro.core.drr.DRRResult` container as
    complete-graph DRR so Phase II (convergecast / broadcast) is reused
    unchanged.

    Failure semantics: a lost rank-exchange message means the recipient does
    not know that neighbour's rank and simply ignores it when choosing a
    parent; a lost connection message leaves the parent unaware of the child
    exactly as in complete-graph DRR.
    """
    n = topology.n
    rng = make_rng(rng)
    failure_model = failure_model or FailureModel()
    metrics = metrics if metrics is not None else MetricsCollector(n=n)
    metrics.begin_phase("local-drr")

    if alive is None:
        alive = ~failure_model.sample_crashes(n, rng)
    alive = np.asarray(alive, dtype=bool)
    if ranks is None:
        ranks = rng.random(n)
    else:
        ranks = np.asarray(ranks, dtype=float)
        if ranks.shape != (n,):
            raise ValueError("ranks must have shape (n,)")

    parent = np.full(n, -1, dtype=np.int64)
    connect_delivered = np.zeros(n, dtype=bool)
    degrees = topology.degrees()

    # Round 1: every alive node sends its rank to every alive neighbour.
    # Message count: one per directed (alive -> any) edge; losses are sampled
    # per directed edge below when deciding what each node learned.
    for node in range(n):
        if not alive[node]:
            continue
        neighbors = topology.neighbors(node)
        metrics.record_messages(MessageKind.RANK, len(neighbors), payload_words=1)

    # What each node learned, and its choice of parent.
    for node in range(n):
        if not alive[node]:
            continue
        best_rank = ranks[node]
        best_neighbor = -1
        for neighbor in topology.neighbors(node):
            if not alive[neighbor]:
                continue
            # The neighbour's rank announcement to `node` may be lost.
            if failure_model.message_lost(rng):
                continue
            if ranks[neighbor] > best_rank:
                best_rank = ranks[neighbor]
                best_neighbor = neighbor
        if best_neighbor >= 0:
            parent[node] = best_neighbor
            metrics.record_message(MessageKind.CONNECT, payload_words=1)
            connect_delivered[node] = not failure_model.message_lost(rng)

    # Two rounds: rank exchange, then connection messages.
    metrics.record_round(2)
    forest = Forest(parent=parent, rank=ranks, alive=alive)
    forest.validate()
    probes = degrees.astype(np.int64)
    return DRRResult(
        forest=forest,
        connect_delivered=connect_delivered,
        probes=probes,
        rounds=2,
        metrics=metrics,
    )
