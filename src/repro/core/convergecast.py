"""Phase II -- Convergecast and Broadcast (Algorithms 2 and 3).

After Phase I every node knows its parent and (if its connection message
arrived) its parent knows it.  Phase II computes the *local* aggregate of
every tree at its root:

* **Convergecast-max** (Algorithm 2): leaves send their value to their
  parent; intermediate nodes wait for their children, take the max of the
  received values and their own, and forward it; the root ends up with the
  tree's maximum.
* **Convergecast-sum** (Algorithm 3): identical structure, but nodes forward
  a pair ``(sum of values, count of nodes)`` so the root learns the tree's
  local sum and its size -- the size is the weight Gossip-ave needs.
* **Broadcast**: the root pushes a payload (its own address after Phase II,
  the global aggregate after Phase III) down the tree.  A node can call only
  one node per round, so a parent serves its children one per round; this is
  why the paper bounds Phase II time by the tree *size* rather than height.

:func:`run_convergecast` and :func:`run_broadcast` are the entry points; the
``backend`` argument selects the substrate kernel.  The vectorized kernel
sweeps the forest one depth layer at a time (all of a layer's upward or
downward transmissions are one batch); the engine kernel runs the
:class:`ConvergecastNode` / :class:`BroadcastNode` state machines at message
granularity.  On a reliable network both produce identical aggregates,
rounds, and message counts for the same seed.

Semantics under failures (both backends):

* A parent only waits for, and only incorporates, the children whose
  CONNECT message it actually received in Phase I ("known children").
* If a convergecast message is lost, that child's whole subtree contribution
  is missing from the root's local aggregate; there are no retransmissions,
  matching the paper's model.  Transmission times follow the *send
  schedule*: a node transmits one round after the last scheduled send of
  its known children, whether or not those messages survived (silence past
  the scheduled round means loss; synchronous rounds make the schedule
  locally computable).  The schedule is a pure function of the forest, so
  loss changes which contributions arrive but never when anything is sent —
  both backends run the identical schedule, rounds included.
* If a broadcast message is lost, the child's subtree never learns the
  payload (such nodes cannot forward Phase III gossip to their root).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..observability.telemetry import current_telemetry
from ..simulator.failures import FailureModel, LossOracle
from ..simulator.message import Message, MessageKind, Send
from ..simulator.metrics import MetricsCollector
from ..simulator.node import ProtocolNode, RoundContext
from ..simulator.rng import make_rng
from ..substrate import EngineKernel, VectorizedKernel, run_on
from .drr import DRRResult

__all__ = [
    "ConvergecastResult",
    "BroadcastResult",
    "ConvergecastNode",
    "BroadcastNode",
    "run_convergecast",
    "run_broadcast",
]

Op = Literal["max", "min", "sum"]


@dataclass
class ConvergecastResult:
    """Per-root local aggregates computed by a convergecast pass.

    ``local_value[r]`` is the local Max/Min (op="max"/"min") or local Sum
    (op="sum") of the tree rooted at ``r``; ``local_weight[r]`` is the number
    of nodes whose value actually reached the root (equal to the tree size on
    a reliable network).  Dictionaries are keyed by root id.
    """

    op: str
    local_value: dict[int, float]
    local_weight: dict[int, int]
    rounds: int
    metrics: MetricsCollector

    def value_vector(self, roots: np.ndarray) -> np.ndarray:
        return np.array([self.local_value[int(r)] for r in roots], dtype=float)

    def weight_vector(self, roots: np.ndarray) -> np.ndarray:
        return np.array([self.local_weight[int(r)] for r in roots], dtype=float)


@dataclass
class BroadcastResult:
    """Outcome of a root-to-tree broadcast.

    ``received[i]`` is True when node ``i`` got the payload;
    ``payload[i]`` is the delivered value (NaN / -1 when not received).
    """

    received: np.ndarray
    payload: np.ndarray
    rounds: int
    metrics: MetricsCollector

    @property
    def coverage(self) -> float:
        return float(self.received.mean())


def _reduce(op: str, a: float, b: float) -> float:
    if op == "max":
        return max(a, b)
    if op == "min":
        return min(a, b)
    if op == "sum":
        return a + b
    raise ValueError(f"unknown convergecast op {op!r}")


def _alive_of(drr: DRRResult) -> np.ndarray:
    alive = drr.forest.alive
    return alive if alive is not None else np.ones(drr.forest.n, dtype=bool)


def _send_schedule(drr: DRRResult, alive: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """The structure-determined convergecast send schedule (see module docstring).

    Returns ``(send_round, last_child_round)``: ``send_round[i]`` is the
    1-based round in which alive non-root ``i`` transmits its accumulated
    aggregate to its parent (leaves in round 1, a parent one round after its
    last *known* child's scheduled send); ``last_child_round[p]`` is the
    latest scheduled send over ``p``'s known alive children (0 for childless
    nodes), i.e. the round after which a root's aggregate is final.  Computed
    without touching the RNG, in the shared preamble, so both backends run
    the identical schedule.
    """
    forest = drr.forest
    n = forest.n
    known = drr.known_child_mask
    depth = forest.depth
    has_parent = forest.parent >= 0
    send_round = np.zeros(n, dtype=np.int64)
    last_child_round = np.zeros(n, dtype=np.int64)
    max_depth = int(depth[alive].max()) if alive.any() else 0
    for d in range(max_depth, 0, -1):
        layer = np.flatnonzero(alive & has_parent & (depth == d))
        if layer.size == 0:
            continue
        send_round[layer] = 1 + last_child_round[layer]
        waiting = layer[known[layer]]
        if waiting.size:
            np.maximum.at(last_child_round, forest.parent[waiting], send_round[waiting])
    return send_round, last_child_round


# --------------------------------------------------------------------------- #
# convergecast
# --------------------------------------------------------------------------- #
def run_convergecast(
    drr: DRRResult,
    values: np.ndarray,
    op: Op = "max",
    failure_model: FailureModel | None = None,
    rng: np.random.Generator | int | None = None,
    metrics: MetricsCollector | None = None,
    backend: str = "vectorized",
) -> ConvergecastResult:
    """Compute local per-tree aggregates at the roots (Algorithms 2 / 3)."""
    forest = drr.forest
    n = forest.n
    values = np.asarray(values, dtype=float)
    if values.shape != (n,):
        raise ValueError(f"values must have shape ({n},), got {values.shape}")
    if op not in ("max", "min", "sum"):
        raise ValueError(f"unknown convergecast op {op!r}")
    rng = make_rng(rng)
    failure_model = failure_model or FailureModel()
    metrics = metrics if metrics is not None else MetricsCollector(n=n)
    metrics.begin_phase("convergecast")
    oracle = LossOracle.for_run(failure_model, rng)
    schedule = _send_schedule(drr, _alive_of(drr))

    return run_on(
        backend,
        vectorized=lambda kernel: _convergecast_vectorized(
            kernel, drr, values, op, oracle, rng, metrics, schedule
        ),
        engine=lambda kernel: _convergecast_engine(
            kernel, drr, values, op, failure_model, oracle, rng, metrics, schedule
        ),
    )


def _convergecast_vectorized(
    kernel: VectorizedKernel,
    drr: DRRResult,
    values: np.ndarray,
    op: str,
    oracle: LossOracle,
    rng: np.random.Generator,
    metrics: MetricsCollector,
    schedule: tuple[np.ndarray, np.ndarray],
) -> ConvergecastResult:
    forest = drr.forest
    n = forest.n
    alive = _alive_of(drr)
    known = drr.known_child_mask  # child side: my parent knows me
    depth = forest.depth
    send_round, _ = schedule
    payload_words = 1 if op in ("max", "min") else 2
    alive_arg = None if alive.all() else alive

    # Accumulators: every alive node starts with its own value and weight 1.
    acc_value = values.astype(float).copy()
    acc_weight = np.ones(n, dtype=np.int64)
    acc_weight[~alive] = 0

    has_parent = forest.parent >= 0
    # Partition the senders into depth layers with ONE radix sort instead
    # of one full-array scan per depth (stable sort keeps each layer in
    # ascending id order, exactly the order `flatnonzero` produced).
    members = np.flatnonzero(alive & has_parent)
    # int32 keys halve the radix passes of the stable sort (depths are tiny)
    order = members[np.argsort(depth[members].astype(np.int32), kind="stable")]
    layer_depths = depth[order]
    max_depth = int(layer_depths[-1]) if order.size else 0
    bounds = np.searchsorted(layer_depths, np.arange(max_depth + 2))
    # Sweep the forest bottom-up, one depth layer per batch: a layer's
    # upward transmissions are charged, lossed, and folded as arrays.  The
    # loss oracle keys each transmission by its scheduled send round, so
    # batching by depth instead of by round changes nothing.
    with current_telemetry().span("substrate.convergecast_layers"):
        for d in range(max_depth, 0, -1):
            layer = order[bounds[d]:bounds[d + 1]]
            if layer.size == 0:
                continue
            parents = forest.parent[layer]
            delivered = kernel.deliver(
                metrics,
                oracle,
                MessageKind.CONVERGECAST,
                parents,
                senders=layer,
                round_index=send_round[layer] - 1,
                alive=alive_arg,
                payload_words=payload_words,
            )
            fold = delivered & known[layer]
            src, dst = layer[fold], parents[fold]
            if op == "sum":
                np.add.at(acc_value, dst, acc_value[src])
            elif op == "max":
                np.maximum.at(acc_value, dst, acc_value[src])
            else:
                np.minimum.at(acc_value, dst, acc_value[src])
            np.add.at(acc_weight, dst, acc_weight[src])

    alive_roots = [int(r) for r in forest.roots if alive[r]]
    local_value = {r: float(acc_value[r]) for r in alive_roots}
    local_weight = {r: int(acc_weight[r]) for r in alive_roots}
    rounds = int(send_round[alive & has_parent].max(initial=0))
    metrics.record_round(rounds)
    return ConvergecastResult(
        op=op,
        local_value=local_value,
        local_weight=local_weight,
        rounds=rounds,
        metrics=metrics,
    )


class ConvergecastNode(ProtocolNode):
    """Per-node convergecast state machine (Algorithms 2 and 3).

    Transmissions follow the precomputed send schedule (see
    :func:`_send_schedule`): the node sends in round ``send_at`` whether or
    not every known child's message arrived — a lost message means a missing
    contribution, never a delay, matching the vectorized backend exactly.
    """

    def __init__(
        self,
        node_id: int,
        value: float,
        parent: int | None,
        known_children: tuple[int, ...],
        op: str,
        send_at: int,
        done_at: int,
    ) -> None:
        super().__init__(node_id)
        self.value = float(value)
        self.weight = 1
        self.parent = parent
        self.known = set(known_children)
        self.op = op
        #: 0-based round in which this node transmits to its parent
        self.send_at = int(send_at)
        #: 0-based round after which a root's aggregate is final
        self.done_at = int(done_at)
        self.sent = False
        self._rounds_seen = -1

    def begin_round(self, ctx: RoundContext) -> list[Send]:
        self._rounds_seen = ctx.round_index
        if self.parent is None or self.sent or ctx.round_index < self.send_at:
            return []
        self.sent = True
        return [
            Send(
                recipient=self.parent,
                kind=MessageKind.CONVERGECAST,
                payload={"value": self.value, "weight": self.weight, "child": self.node_id},
                payload_words=1 if self.op in ("max", "min") else 2,
            )
        ]

    def on_messages(self, ctx: RoundContext, messages: list[Message]) -> list[Send]:
        for message in messages:
            if message.kind != MessageKind.CONVERGECAST.value:
                continue
            child = int(message.get("child", message.sender))
            if child not in self.known:
                # Unknown child (its CONNECT was lost): ignore, see module
                # docstring for the rationale.
                continue
            self.known.discard(child)
            self.value = _reduce(self.op, self.value, float(message.get("value")))
            self.weight += int(message.get("weight", 1))
        return []

    def is_complete(self) -> bool:
        if self.parent is None:
            return self._rounds_seen >= self.done_at - 1
        return self.sent

    def result(self) -> dict:
        return {"value": self.value, "weight": self.weight}


def _convergecast_engine(
    kernel: EngineKernel,
    drr: DRRResult,
    values: np.ndarray,
    op: str,
    failure_model: FailureModel,
    oracle: LossOracle,
    rng: np.random.Generator,
    metrics: MetricsCollector,
    schedule: tuple[np.ndarray, np.ndarray],
) -> ConvergecastResult:
    forest = drr.forest
    n = forest.n
    alive = _alive_of(drr)
    known = drr.known_children
    send_round, last_child_round = schedule
    nodes = [
        ConvergecastNode(
            node_id=i,
            value=float(values[i]),
            parent=(int(forest.parent[i]) if forest.parent[i] >= 0 else None),
            known_children=known[i],
            op=op,
            send_at=int(send_round[i]) - 1,
            done_at=int(last_child_round[i]),
        )
        for i in range(n)
    ]
    outcome = kernel.run(
        nodes,
        rng=rng,
        metrics=metrics,
        failure_model=failure_model,
        alive=alive,
        loss_oracle=oracle,
        max_substeps=2,
        max_rounds=int(send_round.max(initial=0)) + 4,
        strict=False,
    )

    alive_roots = [int(r) for r in forest.roots if alive[r]]
    local_value = {r: float(nodes[r].value) for r in alive_roots}
    local_weight = {r: int(nodes[r].weight) for r in alive_roots}
    return ConvergecastResult(
        op=op,
        local_value=local_value,
        local_weight=local_weight,
        rounds=outcome.rounds,
        metrics=metrics,
    )


# --------------------------------------------------------------------------- #
# broadcast
# --------------------------------------------------------------------------- #
def run_broadcast(
    drr: DRRResult,
    root_payload: dict[int, float],
    failure_model: FailureModel | None = None,
    rng: np.random.Generator | int | None = None,
    metrics: MetricsCollector | None = None,
    phase_name: str = "broadcast",
    backend: str = "vectorized",
) -> BroadcastResult:
    """Push a per-root payload down every tree (one child served per round)."""
    forest = drr.forest
    rng = make_rng(rng)
    failure_model = failure_model or FailureModel()
    metrics = metrics if metrics is not None else MetricsCollector(n=forest.n)
    metrics.begin_phase(phase_name)
    oracle = LossOracle.for_run(failure_model, rng)
    for root in root_payload:
        if not forest.is_root(int(root)):
            raise ValueError(f"node {int(root)} is not a root")

    return run_on(
        backend,
        vectorized=lambda kernel: _broadcast_vectorized(
            kernel, drr, root_payload, oracle, rng, metrics
        ),
        engine=lambda kernel: _broadcast_engine(
            kernel, drr, root_payload, failure_model, oracle, rng, metrics
        ),
    )


def _broadcast_vectorized(
    kernel: VectorizedKernel,
    drr: DRRResult,
    root_payload: dict[int, float],
    oracle: LossOracle,
    rng: np.random.Generator,
    metrics: MetricsCollector,
) -> BroadcastResult:
    forest = drr.forest
    n = forest.n
    alive = _alive_of(drr)
    depth = forest.depth
    alive_arg = None if alive.all() else alive

    received = np.zeros(n, dtype=bool)
    payload = np.full(n, np.nan, dtype=float)
    receive_round = np.full(n, -1, dtype=np.int64)

    for root, value in root_payload.items():
        root = int(root)
        if not alive[root]:
            continue
        received[root] = True
        payload[root] = float(value)
        receive_round[root] = 0

    # A parent serves its known children one per round in ascending id
    # order; precompute each child's 1-based position in that service order.
    # Children are served whether or not they are still alive: a parent has
    # no way to learn that a child died after tree construction (mid-run
    # churn), so it wastes that round -- the transmission is charged and
    # swallowed, exactly as the message-level engine does.  Under the
    # initial-crash model every known child is alive, so this filter change
    # is invisible there.
    serveable = drr.known_child_mask
    kids = np.flatnonzero(serveable)
    parent_keys = forest.parent[kids]
    if n <= 2**31 - 1:
        parent_keys = parent_keys.astype(np.int32)  # halves the radix passes
    order = kids[np.argsort(parent_keys, kind="stable")]
    sibling_rank = np.zeros(n, dtype=np.int64)
    if order.size:
        parents_sorted = forest.parent[order]
        new_group = np.r_[True, parents_sorted[1:] != parents_sorted[:-1]]
        group_start = np.maximum.accumulate(np.where(new_group, np.arange(order.size), 0))
        sibling_rank[order] = np.arange(order.size) - group_start + 1

    # Partition the serveable children into depth layers with one radix
    # sort (stable: ascending id within a layer) instead of a full-array
    # scan per depth.
    by_depth = kids[np.argsort(depth[kids].astype(np.int32), kind="stable")]
    layer_depths = depth[by_depth]
    max_depth = int(layer_depths[-1]) if by_depth.size else 0
    bounds = np.searchsorted(layer_depths, np.arange(max_depth + 2))

    # Sweep the trees top-down one depth layer per batch; a child's arrival
    # round is its parent's receive round plus its service position, and the
    # transmission is charged whether or not it survives.
    max_round = 0
    with current_telemetry().span("substrate.broadcast_layers"):
        for d in range(1, max_depth + 1):
            layer = by_depth[bounds[d]:bounds[d + 1]]
            if layer.size == 0:
                continue
            layer = layer[received[forest.parent[layer]]]
            if layer.size == 0:
                continue
            arrival = receive_round[forest.parent[layer]] + sibling_rank[layer]
            max_round = max(max_round, int(arrival.max()))
            # A transmission to a depth-d child is sent in the round before
            # its arrival (its parent's serving round), which is the round
            # the engine stamps on the same message.
            delivered = kernel.deliver(
                metrics, oracle, MessageKind.BROADCAST, layer,
                senders=forest.parent[layer], round_index=arrival - 1, alive=alive_arg,
            )
            got = layer[delivered]
            received[got] = True
            payload[got] = payload[forest.parent[got]]
            receive_round[got] = arrival[delivered]

    metrics.record_round(max_round)
    return BroadcastResult(received=received, payload=payload, rounds=max_round, metrics=metrics)


class BroadcastNode(ProtocolNode):
    """Per-node broadcast state machine (root address / final aggregate)."""

    def __init__(self, node_id: int, known_children: tuple[int, ...], payload: float | None) -> None:
        super().__init__(node_id)
        self.pending_children = sorted(known_children)
        self.payload = payload
        self.received = payload is not None

    def begin_round(self, ctx: RoundContext) -> list[Send]:
        if not self.received or not self.pending_children:
            return []
        child = self.pending_children.pop(0)
        return [
            Send(recipient=child, kind=MessageKind.BROADCAST, payload={"value": self.payload})
        ]

    def on_messages(self, ctx: RoundContext, messages: list[Message]) -> list[Send]:
        for message in messages:
            if message.kind == MessageKind.BROADCAST.value and not self.received:
                self.received = True
                self.payload = float(message.get("value"))
        return []

    def is_complete(self) -> bool:
        # A node that never receives the payload (lost broadcast upstream, or
        # simply not in any seeded tree) cannot forward; it is "complete" in
        # the sense that it will never act again.
        return not self.received or not self.pending_children

    def result(self) -> dict:
        return {"received": self.received, "payload": self.payload}


def _broadcast_engine(
    kernel: EngineKernel,
    drr: DRRResult,
    root_payload: dict[int, float],
    failure_model: FailureModel,
    oracle: LossOracle,
    rng: np.random.Generator,
    metrics: MetricsCollector,
) -> BroadcastResult:
    forest = drr.forest
    n = forest.n
    alive = _alive_of(drr)
    known = drr.known_children
    nodes = [
        BroadcastNode(
            node_id=i,
            known_children=known[i],
            payload=(float(root_payload[i]) if i in root_payload else None),
        )
        for i in range(n)
    ]
    outcome = kernel.run(
        nodes,
        rng=rng,
        metrics=metrics,
        failure_model=failure_model,
        alive=alive,
        loss_oracle=oracle,
        max_substeps=2,
        max_rounds=4 * n + 16,
        strict=False,
    )

    received = np.array([node.received for node in nodes], dtype=bool)
    received &= alive
    payload = np.array(
        [node.payload if node.payload is not None else np.nan for node in nodes], dtype=float
    )
    payload[~alive] = np.nan
    return BroadcastResult(received=received, payload=payload, rounds=outcome.rounds, metrics=metrics)
