"""Phase II -- Convergecast and Broadcast (Algorithms 2 and 3).

After Phase I every node knows its parent and (if its connection message
arrived) its parent knows it.  Phase II computes the *local* aggregate of
every tree at its root:

* **Convergecast-max** (Algorithm 2): leaves send their value to their
  parent; intermediate nodes wait for their children, take the max of the
  received values and their own, and forward it; the root ends up with the
  tree's maximum.
* **Convergecast-sum** (Algorithm 3): identical structure, but nodes forward
  a pair ``(sum of values, count of nodes)`` so the root learns the tree's
  local sum and its size -- the size is the weight Gossip-ave needs.
* **Broadcast**: the root pushes a payload (its own address after Phase II,
  the global aggregate after Phase III) down the tree.  A node can call only
  one node per round, so a parent serves its children one per round; this is
  why the paper bounds Phase II time by the tree *size* rather than height.

Semantics under failures (both implementations):

* A parent only waits for, and only incorporates, the children whose
  CONNECT message it actually received in Phase I ("known children").
* If a convergecast message is lost, that child's whole subtree contribution
  is missing from the root's local aggregate; there are no retransmissions,
  matching the paper's model.  The engine implementation uses a timeout so a
  lost message cannot deadlock a waiting parent.
* If a broadcast message is lost, the child's subtree never learns the
  payload (such nodes cannot forward Phase III gossip to their root).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..simulator.engine import EngineConfig, SynchronousEngine
from ..simulator.failures import FailureModel
from ..simulator.message import Message, MessageKind, Send
from ..simulator.metrics import MetricsCollector
from ..simulator.network import Network
from ..simulator.node import ProtocolNode, RoundContext
from ..simulator.rng import make_rng
from .drr import DRRResult
from .forest import Forest

__all__ = [
    "ConvergecastResult",
    "BroadcastResult",
    "run_convergecast",
    "run_broadcast",
    "run_convergecast_engine",
    "run_broadcast_engine",
]

Op = Literal["max", "min", "sum"]


@dataclass
class ConvergecastResult:
    """Per-root local aggregates computed by a convergecast pass.

    ``local_value[r]`` is the local Max/Min (op="max"/"min") or local Sum
    (op="sum") of the tree rooted at ``r``; ``local_weight[r]`` is the number
    of nodes whose value actually reached the root (equal to the tree size on
    a reliable network).  Dictionaries are keyed by root id.
    """

    op: str
    local_value: dict[int, float]
    local_weight: dict[int, int]
    rounds: int
    metrics: MetricsCollector

    def value_vector(self, roots: np.ndarray) -> np.ndarray:
        return np.array([self.local_value[int(r)] for r in roots], dtype=float)

    def weight_vector(self, roots: np.ndarray) -> np.ndarray:
        return np.array([self.local_weight[int(r)] for r in roots], dtype=float)


@dataclass
class BroadcastResult:
    """Outcome of a root-to-tree broadcast.

    ``received[i]`` is True when node ``i`` got the payload;
    ``payload[i]`` is the delivered value (NaN / -1 when not received).
    """

    received: np.ndarray
    payload: np.ndarray
    rounds: int
    metrics: MetricsCollector

    @property
    def coverage(self) -> float:
        return float(self.received.mean())


def _known_children(drr: DRRResult) -> tuple[tuple[int, ...], ...]:
    return drr.known_children


def _reduce(op: str, a: float, b: float) -> float:
    if op == "max":
        return max(a, b)
    if op == "min":
        return min(a, b)
    if op == "sum":
        return a + b
    raise ValueError(f"unknown convergecast op {op!r}")


# --------------------------------------------------------------------------- #
# fast implementation
# --------------------------------------------------------------------------- #
def run_convergecast(
    drr: DRRResult,
    values: np.ndarray,
    op: Op = "max",
    failure_model: FailureModel | None = None,
    rng: np.random.Generator | int | None = None,
    metrics: MetricsCollector | None = None,
) -> ConvergecastResult:
    """Compute local per-tree aggregates at the roots (Algorithms 2 / 3)."""
    forest = drr.forest
    n = forest.n
    values = np.asarray(values, dtype=float)
    if values.shape != (n,):
        raise ValueError(f"values must have shape ({n},), got {values.shape}")
    rng = make_rng(rng)
    failure_model = failure_model or FailureModel()
    metrics = metrics if metrics is not None else MetricsCollector(n=n)
    metrics.begin_phase("convergecast")

    alive = forest.alive if forest.alive is not None else np.ones(n, dtype=bool)
    known = _known_children(drr)

    # Accumulators: every alive node starts with its own value and weight 1.
    acc_value = values.astype(float).copy()
    acc_weight = np.ones(n, dtype=np.int64)
    acc_weight[~alive] = 0

    # send_round[i]: round in which non-root i transmits its accumulated
    # aggregate to its parent (leaves send in round 1, a parent one round
    # after its last known child).
    send_round = np.zeros(n, dtype=np.int64)

    # Process nodes bottom-up so children are folded in before parents send.
    order = forest.topological_order()[::-1]
    payload_words = 1 if op in ("max", "min") else 2
    for node in order:
        node = int(node)
        if not alive[node]:
            continue
        parent = int(forest.parent[node])
        kids = [k for k in known[node] if alive[k]]
        send_round[node] = 1 + max((int(send_round[k]) for k in kids), default=0)
        if parent < 0:
            continue
        # The upward message is charged whether or not it arrives.
        metrics.record_message(MessageKind.CONVERGECAST, payload_words=payload_words)
        lost = failure_model.message_lost(rng) or not alive[parent]
        known_to_parent = bool(drr.connect_delivered[node])
        if lost or not known_to_parent:
            continue
        acc_value[parent] = _reduce(op, float(acc_value[parent]), float(acc_value[node]))
        acc_weight[parent] += acc_weight[node]

    alive_roots = [int(r) for r in forest.roots if alive[r]]
    local_value = {r: float(acc_value[r]) for r in alive_roots}
    local_weight = {r: int(acc_weight[r]) for r in alive_roots}
    rounds = int(max((send_round[i] for i in range(n) if alive[i] and forest.parent[i] >= 0), default=0))
    metrics.record_round(rounds)
    return ConvergecastResult(
        op=op,
        local_value=local_value,
        local_weight=local_weight,
        rounds=rounds,
        metrics=metrics,
    )


def run_broadcast(
    drr: DRRResult,
    root_payload: dict[int, float],
    failure_model: FailureModel | None = None,
    rng: np.random.Generator | int | None = None,
    metrics: MetricsCollector | None = None,
    phase_name: str = "broadcast",
) -> BroadcastResult:
    """Push a per-root payload down every tree (one child served per round)."""
    forest = drr.forest
    n = forest.n
    rng = make_rng(rng)
    failure_model = failure_model or FailureModel()
    metrics = metrics if metrics is not None else MetricsCollector(n=n)
    metrics.begin_phase(phase_name)

    alive = forest.alive if forest.alive is not None else np.ones(n, dtype=bool)
    known = _known_children(drr)

    received = np.zeros(n, dtype=bool)
    payload = np.full(n, np.nan, dtype=float)
    receive_round = np.full(n, -1, dtype=np.int64)

    # Seed the roots that have something to broadcast.
    frontier: list[int] = []
    for root, value in root_payload.items():
        root = int(root)
        if not forest.is_root(root):
            raise ValueError(f"node {root} is not a root")
        if not alive[root]:
            continue
        received[root] = True
        payload[root] = float(value)
        receive_round[root] = 0
        frontier.append(root)

    # Breadth-first down the trees; a node forwards to its known children one
    # per round, in ascending id order, starting the round after it received.
    max_round = 0
    stack = list(frontier)
    while stack:
        node = stack.pop()
        kids = [k for k in known[node] if alive[k]]
        for index, child in enumerate(sorted(kids), start=1):
            metrics.record_message(MessageKind.BROADCAST, payload_words=1)
            arrival = int(receive_round[node]) + index
            max_round = max(max_round, arrival)
            if failure_model.message_lost(rng):
                continue
            received[child] = True
            payload[child] = payload[node]
            receive_round[child] = arrival
            stack.append(child)

    metrics.record_round(max_round)
    return BroadcastResult(received=received, payload=payload, rounds=max_round, metrics=metrics)


# --------------------------------------------------------------------------- #
# engine-backed implementation
# --------------------------------------------------------------------------- #
class ConvergecastNode(ProtocolNode):
    """Per-node convergecast state machine (Algorithms 2 and 3)."""

    def __init__(
        self,
        node_id: int,
        value: float,
        parent: int | None,
        known_children: tuple[int, ...],
        op: str,
        timeout: int,
    ) -> None:
        super().__init__(node_id)
        self.value = float(value)
        self.weight = 1
        self.parent = parent
        self.waiting_for = set(known_children)
        self.op = op
        self.timeout = timeout
        self.sent = False
        self._rounds_seen = 0

    def _ready(self, ctx: RoundContext) -> bool:
        return not self.waiting_for or ctx.round_index >= self.timeout

    def begin_round(self, ctx: RoundContext) -> list[Send]:
        self._rounds_seen = ctx.round_index
        if self.parent is None or self.sent or not self._ready(ctx):
            return []
        self.sent = True
        return [
            Send(
                recipient=self.parent,
                kind=MessageKind.CONVERGECAST,
                payload={"value": self.value, "weight": self.weight, "child": self.node_id},
                payload_words=1 if self.op in ("max", "min") else 2,
            )
        ]

    def on_messages(self, ctx: RoundContext, messages: list[Message]) -> list[Send]:
        for message in messages:
            if message.kind != MessageKind.CONVERGECAST.value:
                continue
            child = int(message.get("child", message.sender))
            if child not in self.waiting_for:
                # Unknown child (its CONNECT was lost): ignore, see module
                # docstring for the rationale.
                continue
            self.waiting_for.discard(child)
            self.value = _reduce(self.op, self.value, float(message.get("value")))
            self.weight += int(message.get("weight", 1))
        return []

    def is_complete(self) -> bool:
        if self.parent is None:
            # A root waiting for a child whose message was lost gives up at
            # the same timeout its descendants use, so loss never deadlocks.
            return not self.waiting_for or self._rounds_seen >= self.timeout
        return self.sent

    def result(self) -> dict:
        return {"value": self.value, "weight": self.weight}


class BroadcastNode(ProtocolNode):
    """Per-node broadcast state machine (root address / final aggregate)."""

    def __init__(self, node_id: int, known_children: tuple[int, ...], payload: float | None) -> None:
        super().__init__(node_id)
        self.pending_children = sorted(known_children)
        self.payload = payload
        self.received = payload is not None

    def begin_round(self, ctx: RoundContext) -> list[Send]:
        if not self.received or not self.pending_children:
            return []
        child = self.pending_children.pop(0)
        return [
            Send(recipient=child, kind=MessageKind.BROADCAST, payload={"value": self.payload})
        ]

    def on_messages(self, ctx: RoundContext, messages: list[Message]) -> list[Send]:
        for message in messages:
            if message.kind == MessageKind.BROADCAST.value and not self.received:
                self.received = True
                self.payload = float(message.get("value"))
        return []

    def is_complete(self) -> bool:
        # A node that never receives the payload (lost broadcast upstream, or
        # simply not in any seeded tree) cannot forward; it is "complete" in
        # the sense that it will never act again.
        return not self.received or not self.pending_children

    def result(self) -> dict:
        return {"received": self.received, "payload": self.payload}


def run_convergecast_engine(
    drr: DRRResult,
    values: np.ndarray,
    op: Op = "max",
    failure_model: FailureModel | None = None,
    rng: np.random.Generator | int | None = None,
    metrics: MetricsCollector | None = None,
    network: Network | None = None,
) -> ConvergecastResult:
    """Message-level convergecast on the simulator substrate."""
    forest = drr.forest
    n = forest.n
    values = np.asarray(values, dtype=float)
    rng = make_rng(rng)
    failure_model = failure_model or FailureModel()
    metrics = metrics if metrics is not None else MetricsCollector(n=n)
    metrics.begin_phase("convergecast")
    if network is None:
        network = Network(n, failure_model=failure_model, rng=rng)
        network.alive = (forest.alive if forest.alive is not None else np.ones(n, dtype=bool)).copy()

    known = _known_children(drr)
    # Timeout after which a parent stops waiting for lost child messages.
    timeout = 4 * max(4, int(math.ceil(math.log2(max(2, n)))))
    nodes = [
        ConvergecastNode(
            node_id=i,
            value=float(values[i]),
            parent=(int(forest.parent[i]) if forest.parent[i] >= 0 else None),
            known_children=known[i],
            op=op,
            timeout=timeout,
        )
        for i in range(n)
    ]
    engine = SynchronousEngine(
        network=network,
        nodes=nodes,
        rng=rng,
        metrics=metrics,
        config=EngineConfig(max_substeps=2, max_rounds=timeout + n + 4, strict=False),
    )
    outcome = engine.run()

    alive = network.alive
    alive_roots = [int(r) for r in forest.roots if alive[r]]
    local_value = {r: float(nodes[r].value) for r in alive_roots}
    local_weight = {r: int(nodes[r].weight) for r in alive_roots}
    return ConvergecastResult(
        op=op,
        local_value=local_value,
        local_weight=local_weight,
        rounds=outcome.rounds,
        metrics=metrics,
    )


def run_broadcast_engine(
    drr: DRRResult,
    root_payload: dict[int, float],
    failure_model: FailureModel | None = None,
    rng: np.random.Generator | int | None = None,
    metrics: MetricsCollector | None = None,
    network: Network | None = None,
    phase_name: str = "broadcast",
) -> BroadcastResult:
    """Message-level broadcast on the simulator substrate."""
    forest = drr.forest
    n = forest.n
    rng = make_rng(rng)
    failure_model = failure_model or FailureModel()
    metrics = metrics if metrics is not None else MetricsCollector(n=n)
    metrics.begin_phase(phase_name)
    if network is None:
        network = Network(n, failure_model=failure_model, rng=rng)
        network.alive = (forest.alive if forest.alive is not None else np.ones(n, dtype=bool)).copy()

    known = _known_children(drr)
    nodes = [
        BroadcastNode(
            node_id=i,
            known_children=known[i],
            payload=(float(root_payload[i]) if i in root_payload else None),
        )
        for i in range(n)
    ]
    engine = SynchronousEngine(
        network=network,
        nodes=nodes,
        rng=rng,
        metrics=metrics,
        config=EngineConfig(max_substeps=2, max_rounds=4 * n + 16, strict=False),
    )
    outcome = engine.run()

    received = np.array([node.received for node in nodes], dtype=bool)
    payload = np.array(
        [node.payload if node.payload is not None else np.nan for node in nodes], dtype=float
    )
    return BroadcastResult(received=received, payload=payload, rounds=outcome.rounds, metrics=metrics)
