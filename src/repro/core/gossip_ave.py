"""Phase III -- Gossip-ave, the non-uniform push-sum over the roots (Algorithm 6).

Every root starts with the pair ``(s, g)`` produced by Convergecast-sum: the
local sum of the values in its tree and the tree size.  In every round each
root halves its pair, keeps one half, and pushes the other half to a node
chosen uniformly at random from the *whole* network; non-roots forward the
push to their own root.  A root's estimate of the global average is always
``s / g``.

Because pushes are addressed uniformly over all ``n`` nodes but land (after
forwarding) on roots, a root is selected with probability proportional to its
*tree size* -- the non-uniform selection the paper analyses.  Theorem 7 shows
that the root of the largest tree reaches relative error ``<= 2 / n^(alpha-1)``
within ``O(log n)`` rounds; the other roots then learn the answer through
Data-spread (Algorithm 5), not through their own convergence.

Mass conservation: with a reliable network the invariant
``sum_i s_i = S`` and ``sum_i g_i = n_alive`` holds in every round; lost
messages remove mass, exactly like the paper's failure model (the factor
``(1 - delta)`` inside ``P_i`` of Lemma 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..simulator.failures import FailureModel
from ..simulator.message import MessageKind
from ..simulator.metrics import MetricsCollector
from ..simulator.rng import make_rng

__all__ = ["GossipAveResult", "default_ave_rounds", "run_gossip_ave"]


def default_ave_rounds(n: int, epsilon: float | None = None, loss_probability: float = 0.0) -> int:
    """Round budget ``O(log m + log(1/epsilon))`` of Theorem 7.

    The default target error is ``epsilon = 1/n`` (i.e. ``alpha = 1``), which
    is far below what any downstream consumer of Average needs and still only
    costs ``~3 log2 n`` rounds.
    """
    epsilon = epsilon if epsilon is not None else 1.0 / max(2, n)
    rho = 1.0 - (1.0 - loss_probability) ** 2
    base = math.log2(max(2, n)) + math.log2(1.0 / max(1e-300, epsilon)) + 8.0
    return int(math.ceil(base / max(1e-9, 1.0 - rho)))


@dataclass
class GossipAveResult:
    """Outcome of Gossip-ave over the roots.

    Attributes
    ----------
    estimates:
        Mapping root id -> that root's final ``s/g`` estimate.
    sums / weights:
        Final ``s`` and ``g`` values per root id (useful to derive Sum and
        Count estimates: see :mod:`repro.core.drr_gossip`).
    history:
        Per-round estimate of the traced root (empty when not requested);
        the E6 experiment uses this to plot convergence.
    rounds:
        Rounds executed.
    """

    estimates: dict[int, float]
    sums: dict[int, float]
    weights: dict[int, float]
    rounds: int
    metrics: MetricsCollector
    traced_root: int | None = None
    history: list[float] = field(default_factory=list)

    def estimate_at(self, root: int) -> float:
        return self.estimates[int(root)]


def run_gossip_ave(
    roots: np.ndarray,
    local_sums: np.ndarray,
    local_weights: np.ndarray,
    root_of: np.ndarray,
    n: int,
    failure_model: FailureModel | None = None,
    rng: np.random.Generator | int | None = None,
    metrics: MetricsCollector | None = None,
    rounds: int | None = None,
    epsilon: float | None = None,
    phase_name: str = "gossip-ave",
    alive: np.ndarray | None = None,
    trace_root: int | None = None,
) -> GossipAveResult:
    """Run Gossip-ave (Algorithm 6) over the forest's roots.

    Parameters
    ----------
    roots, local_sums, local_weights:
        Root ids and their Convergecast-sum output ``(s, g)``, aligned.
    root_of:
        Forwarding table over all ``n`` nodes (-1 when the node does not know
        its root; pushes landing there are dropped).
    rounds:
        Number of gossip rounds; ``None`` selects
        :func:`default_ave_rounds` for the requested ``epsilon``.
    trace_root:
        If given, the estimate of this root is recorded after every round.
    """
    roots = np.asarray(roots, dtype=np.int64)
    local_sums = np.asarray(local_sums, dtype=float)
    local_weights = np.asarray(local_weights, dtype=float)
    root_of = np.asarray(root_of, dtype=np.int64)
    if roots.size == 0:
        raise ValueError("gossip-ave needs at least one root")
    if local_sums.shape != roots.shape or local_weights.shape != roots.shape:
        raise ValueError("local_sums and local_weights must align with roots")
    # Weights are tree sizes when computing Average, and an indicator vector
    # (1 at one designated root) when the pipeline derives Sum or Count, so
    # zeros are allowed -- but mass must exist somewhere and never be negative.
    if (local_weights < 0).any():
        raise ValueError("root weights must be non-negative")
    if float(local_weights.sum()) <= 0.0:
        raise ValueError("at least one root must start with positive weight")

    rng = make_rng(rng)
    failure_model = failure_model or FailureModel()
    metrics = metrics if metrics is not None else MetricsCollector(n=n)
    metrics.begin_phase(phase_name)
    if alive is None:
        alive = np.ones(n, dtype=bool)

    delta = failure_model.loss_probability
    m = roots.size
    position = np.full(n, -1, dtype=np.int64)
    position[roots] = np.arange(m)

    total_rounds = rounds if rounds is not None else default_ave_rounds(n, epsilon, delta)

    s = local_sums.copy()
    g = local_weights.copy()
    history: list[float] = []
    trace_pos = int(position[trace_root]) if trace_root is not None else None

    for _ in range(total_rounds):
        metrics.record_round()
        targets = rng.integers(0, n, size=m)
        metrics.record_messages(MessageKind.GOSSIP, m, payload_words=2)

        # Each root keeps half and ships half, whether or not the shipment
        # survives (lost mass is lost -- that is the paper's model).
        send_s = s / 2.0
        send_g = g / 2.0
        s -= send_s
        g -= send_g

        # Resolve each shipment to the root that finally receives it.
        receiver = np.full(m, -1, dtype=np.int64)
        first_hop_ok = ~failure_model.sample_losses(m, rng) & alive[targets]
        is_root_target = position[targets] >= 0
        direct = first_hop_ok & is_root_target
        receiver[direct] = position[targets[direct]]
        needs_forward = first_hop_ok & ~is_root_target
        forward_targets = root_of[targets[needs_forward]]
        knows_root = forward_targets >= 0
        metrics.record_messages(MessageKind.FORWARD, int(knows_root.sum()), payload_words=2)
        second_hop_ok = ~failure_model.sample_losses(int(needs_forward.sum()), rng)
        ok = knows_root & second_hop_ok
        ok_roots = forward_targets[ok]
        ok_alive = alive[ok_roots]
        idx = np.flatnonzero(needs_forward)[ok][ok_alive]
        receiver[idx] = position[forward_targets[ok][ok_alive]]

        delivered = receiver >= 0
        if delivered.any():
            np.add.at(s, receiver[delivered], send_s[delivered])
            np.add.at(g, receiver[delivered], send_g[delivered])

        if trace_pos is not None:
            history.append(float(s[trace_pos] / g[trace_pos]) if g[trace_pos] > 0 else float("nan"))

    estimates = {
        int(root): (float(s[i] / g[i]) if g[i] > 0 else float("nan"))
        for i, root in enumerate(roots)
    }
    sums = {int(root): float(s[i]) for i, root in enumerate(roots)}
    weights = {int(root): float(g[i]) for i, root in enumerate(roots)}
    return GossipAveResult(
        estimates=estimates,
        sums=sums,
        weights=weights,
        rounds=total_rounds,
        metrics=metrics,
        traced_root=trace_root,
        history=history,
    )
