"""Phase III -- Gossip-ave, the non-uniform push-sum over the roots (Algorithm 6).

Every root starts with the pair ``(s, g)`` produced by Convergecast-sum: the
local sum of the values in its tree and the tree size.  In every round each
root halves its pair, keeps one half, and pushes the other half to a node
chosen uniformly at random from the *whole* network; non-roots forward the
push to their own root.  A root's estimate of the global average is always
``s / g``.

Because pushes are addressed uniformly over all ``n`` nodes but land (after
forwarding) on roots, a root is selected with probability proportional to its
*tree size* -- the non-uniform selection the paper analyses.  Theorem 7 shows
that the root of the largest tree reaches relative error ``<= 2 / n^(alpha-1)``
within ``O(log n)`` rounds; the other roots then learn the answer through
Data-spread (Algorithm 5), not through their own convergence.

Mass conservation: with a reliable network the invariant
``sum_i s_i = S`` and ``sum_i g_i = n_alive`` holds in every round; lost
messages remove mass, exactly like the paper's failure model (the factor
``(1 - delta)`` inside ``P_i`` of Lemma 8).

Backends: the ``backend`` argument selects the columnar kernel (default) or
the message-level engine, which runs :class:`GossipAveRootNode` machines on
the roots and the shared :class:`~repro.core.gossip_max.RootForwarderNode`
on everyone else.  Both consume the RNG identically on reliable networks;
estimates agree to float-rounding (the order in which a root folds
concurrent pushes differs between a columnar scatter-add and per-message
delivery).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..simulator.failures import ChurnOracle, FailureModel, LossOracle
from ..simulator.message import Message, MessageKind, Send
from ..simulator.metrics import MetricsCollector
from ..simulator.node import ProtocolNode, RoundContext
from ..simulator.rng import make_rng
from ..substrate import EngineKernel, VectorizedKernel, run_on, tuning
from .gossip_max import RootForwarderNode

__all__ = ["GossipAveResult", "GossipAveRootNode", "default_ave_rounds", "run_gossip_ave"]


def default_ave_rounds(n: int, epsilon: float | None = None, loss_probability: float = 0.0) -> int:
    """Round budget ``O(log m + log(1/epsilon))`` of Theorem 7.

    The default target error is ``epsilon = 1/n`` (i.e. ``alpha = 1``), which
    is far below what any downstream consumer of Average needs and still only
    costs ``~3 log2 n`` rounds.
    """
    epsilon = epsilon if epsilon is not None else 1.0 / max(2, n)
    rho = 1.0 - (1.0 - loss_probability) ** 2
    base = math.log2(max(2, n)) + math.log2(1.0 / max(1e-300, epsilon)) + 8.0
    return int(math.ceil(base / max(1e-9, 1.0 - rho)))


@dataclass
class GossipAveResult:
    """Outcome of Gossip-ave over the roots.

    Attributes
    ----------
    estimates:
        Mapping root id -> that root's final ``s/g`` estimate.
    sums / weights:
        Final ``s`` and ``g`` values per root id (useful to derive Sum and
        Count estimates: see :mod:`repro.core.drr_gossip`).
    history:
        Per-round estimate of the traced root (empty when not requested);
        the E6 experiment uses this to plot convergence.
    rounds:
        Rounds executed.
    """

    estimates: dict[int, float]
    sums: dict[int, float]
    weights: dict[int, float]
    rounds: int
    metrics: MetricsCollector
    traced_root: int | None = None
    history: list[float] = field(default_factory=list)

    def estimate_at(self, root: int) -> float:
        return self.estimates[int(root)]


def run_gossip_ave(
    roots: np.ndarray,
    local_sums: np.ndarray,
    local_weights: np.ndarray,
    root_of: np.ndarray,
    n: int,
    failure_model: FailureModel | None = None,
    rng: np.random.Generator | int | None = None,
    metrics: MetricsCollector | None = None,
    rounds: int | None = None,
    epsilon: float | None = None,
    phase_name: str = "gossip-ave",
    alive: np.ndarray | None = None,
    trace_root: int | None = None,
    churn: ChurnOracle | None = None,
    churn_base_round: int = 0,
    backend: str = "vectorized",
) -> GossipAveResult:
    """Run Gossip-ave (Algorithm 6) over the forest's roots.

    Parameters
    ----------
    roots, local_sums, local_weights:
        Root ids and their Convergecast-sum output ``(s, g)``, aligned.
    root_of:
        Forwarding table over all ``n`` nodes (-1 when the node does not know
        its root; pushes landing there are dropped).
    rounds:
        Number of gossip rounds; ``None`` selects
        :func:`default_ave_rounds` for the requested ``epsilon``.
    trace_root:
        If given, the estimate of this root is recorded after every round
        it is alive for (plus the terminal estimate under churn).
    churn:
        Mid-run churn oracle (``None`` auto-derives one from
        ``failure_model``); crash-only, like :func:`run_gossip_max` -- a
        revived root would re-inject mass the invariant already counted.
        ``churn_base_round`` offsets this procedure's rounds in the oracle's
        identity space.  The ``alive`` mask is evolved in place.
    backend:
        Substrate backend: ``"vectorized"`` (default), ``"sharded"``, or ``"engine"``.
    """
    roots = np.asarray(roots, dtype=np.int64)
    local_sums = np.asarray(local_sums, dtype=float)
    local_weights = np.asarray(local_weights, dtype=float)
    root_of = np.asarray(root_of, dtype=np.int64)
    if roots.size == 0:
        raise ValueError("gossip-ave needs at least one root")
    if local_sums.shape != roots.shape or local_weights.shape != roots.shape:
        raise ValueError("local_sums and local_weights must align with roots")
    # Weights are tree sizes when computing Average, and an indicator vector
    # (1 at one designated root) when the pipeline derives Sum or Count, so
    # zeros are allowed -- but mass must exist somewhere and never be negative.
    if (local_weights < 0).any():
        raise ValueError("root weights must be non-negative")
    if float(local_weights.sum()) <= 0.0:
        raise ValueError("at least one root must start with positive weight")

    rng = make_rng(rng)
    failure_model = failure_model or FailureModel()
    metrics = metrics if metrics is not None else MetricsCollector(n=n)
    metrics.begin_phase(phase_name)
    if alive is None:
        alive = np.ones(n, dtype=bool)
    oracle = LossOracle.for_run(failure_model, rng)
    if churn is None:
        churn = ChurnOracle.for_run(failure_model, rng)
    if churn is not None and churn.has_joins:
        raise ValueError(
            "gossip-ave is crash-only under churn: a revived root would "
            "re-inject mass the conservation invariant already counted "
            "(set join_rate=0 and use no join schedule events, or run the "
            "epoch-gossip-ave protocol instead)"
        )

    total_rounds = (
        rounds
        if rounds is not None
        else default_ave_rounds(n, epsilon, failure_model.loss_probability)
    )

    return run_on(
        backend,
        vectorized=lambda kernel: _gossip_ave_vectorized(
            kernel, roots, local_sums, local_weights, root_of, n, oracle,
            rng, metrics, total_rounds, alive, trace_root, churn, churn_base_round,
        ),
        engine=lambda kernel: _gossip_ave_engine(
            kernel, roots, local_sums, local_weights, root_of, n, failure_model,
            oracle, rng, metrics, total_rounds, alive, trace_root, churn, churn_base_round,
        ),
    )


# --------------------------------------------------------------------------- #
# vectorized (columnar) backend
# --------------------------------------------------------------------------- #
def _gossip_ave_vectorized(
    kernel: VectorizedKernel,
    roots: np.ndarray,
    local_sums: np.ndarray,
    local_weights: np.ndarray,
    root_of: np.ndarray,
    n: int,
    oracle: LossOracle,
    rng: np.random.Generator,
    metrics: MetricsCollector,
    total_rounds: int,
    alive: np.ndarray,
    trace_root: int | None,
    churn: ChurnOracle | None,
    churn_base_round: int,
) -> GossipAveResult:
    m = roots.size
    position = np.full(n, -1, dtype=np.int64)
    position[roots] = np.arange(m)
    alive_arg = alive if churn is not None else (None if alive.all() else alive)
    dead_targets = churn is not None
    estimate_dtype = tuning.get_tuning().estimate_dtype()

    s = local_sums.astype(estimate_dtype)
    g = local_weights.astype(estimate_dtype)
    history: list[float] = []
    trace_pos = int(position[trace_root]) if trace_root is not None else None

    def _trace_estimate() -> float:
        return float(s[trace_pos] / g[trace_pos]) if g[trace_pos] > 0 else float("nan")

    for r in range(total_rounds):
        if churn is not None:
            died, joined = churn.step(churn_base_round + r, alive)
            if died.size or joined.size:
                kernel.refresh_alive(alive)
            send_pos = np.flatnonzero(alive[roots])
        else:
            send_pos = None
        metrics.record_round()
        # The engine's traced node snapshots its estimate at the start of
        # each round it is alive for; recording here (rather than at the
        # bottom of the loop) reproduces that sequence exactly, dead gaps
        # included, and is identical without churn.
        if trace_pos is not None and r > 0 and (churn is None or alive[trace_root]):
            history.append(_trace_estimate())

        senders = roots if send_pos is None else roots[send_pos]
        targets = kernel.sample_uniform(rng, n, senders.size)

        # Each live root keeps half and ships half, whether or not the
        # shipment survives (lost mass is lost -- that is the paper's
        # model).  Dead roots' mass freezes where it fell.
        if send_pos is None:
            send_s = s / 2.0
            send_g = g / 2.0
            s -= send_s
            g -= send_g
        else:
            send_s = s[send_pos] / 2.0
            send_g = g[send_pos] / 2.0
            s[send_pos] -= send_s
            g[send_pos] -= send_g

        receiver = kernel.relay_to_roots(
            metrics, oracle, targets, senders=senders, round_index=r,
            kind=MessageKind.GOSSIP, position=position, root_of=root_of,
            alive=alive_arg, payload_words=2, dead_targets=dead_targets,
        )
        # The fused scatter-add pre-sums the round's contributions before
        # folding into s/g, so results differ from per-message folding at
        # the last ulp — inside the documented 1e-12 fold-order tolerance,
        # like every other sum-type reordering between the backends.
        kernel.fold_pushes(receiver, send_s, send_g, s, g)

    if trace_pos is not None and total_rounds > 0:
        history.append(_trace_estimate())

    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(g > 0, s / g, np.float64(np.nan))
    root_ids = roots.tolist()
    estimates = dict(zip(root_ids, ratio.tolist()))
    sums = dict(zip(root_ids, np.asarray(s, dtype=np.float64).tolist()))
    weights = dict(zip(root_ids, np.asarray(g, dtype=np.float64).tolist()))
    return GossipAveResult(
        estimates=estimates,
        sums=sums,
        weights=weights,
        rounds=total_rounds,
        metrics=metrics,
        traced_root=trace_root,
        history=history,
    )


# --------------------------------------------------------------------------- #
# engine (message-level) backend
# --------------------------------------------------------------------------- #
class GossipAveRootNode(ProtocolNode):
    """A root in Gossip-ave: halves its ``(s, g)`` pair and pushes one half."""

    def __init__(self, node_id: int, s: float, g: float, rounds: int, trace: bool = False) -> None:
        super().__init__(node_id)
        self.s = float(s)
        self.g = float(g)
        self.rounds = int(rounds)
        self.rounds_done = 0
        self.trace = trace
        self.history: list[float] = []

    def _estimate(self) -> float:
        return self.s / self.g if self.g > 0 else float("nan")

    def begin_round(self, ctx: RoundContext) -> list[Send]:
        r = ctx.round_index
        if r >= self.rounds:
            return []
        if self.trace and r > 0:
            # State observed at the start of round r is the estimate after
            # round r - 1 (the quantity the vectorized history records).
            self.history.append(self._estimate())
        self.rounds_done += 1
        send_s, send_g = self.s / 2.0, self.g / 2.0
        self.s -= send_s
        self.g -= send_g
        return [
            Send(
                recipient=ctx.random_node(),
                kind=MessageKind.GOSSIP,
                payload={"s": send_s, "w": send_g},
                payload_words=2,
            )
        ]

    def on_messages(self, ctx: RoundContext, messages: list[Message]) -> list[Send]:
        for message in messages:
            inner = message.get("inner", message.kind)
            if inner == MessageKind.GOSSIP.value:
                self.s += float(message.get("s"))
                self.g += float(message.get("w"))
        return []

    def is_complete(self) -> bool:
        return self.rounds_done >= self.rounds

    def result(self) -> float:
        return self._estimate()


def _gossip_ave_engine(
    kernel: EngineKernel,
    roots: np.ndarray,
    local_sums: np.ndarray,
    local_weights: np.ndarray,
    root_of: np.ndarray,
    n: int,
    failure_model: FailureModel,
    oracle: LossOracle,
    rng: np.random.Generator,
    metrics: MetricsCollector,
    total_rounds: int,
    alive: np.ndarray,
    trace_root: int | None,
    churn: ChurnOracle | None,
    churn_base_round: int,
) -> GossipAveResult:
    is_root = np.zeros(n, dtype=bool)
    is_root[roots] = True
    by_root = {int(r): (float(sv), float(wv)) for r, sv, wv in zip(roots, local_sums, local_weights)}
    nodes: list[ProtocolNode] = [
        GossipAveRootNode(i, *by_root[i], rounds=total_rounds, trace=(trace_root == i))
        if is_root[i]
        else RootForwarderNode(i, int(root_of[i]))
        for i in range(n)
    ]
    # Three sub-steps: push, forward; nothing answers back within the round.
    outcome = kernel.run(
        nodes,
        rng=rng,
        metrics=metrics,
        failure_model=failure_model,
        alive=alive,
        loss_oracle=oracle,
        churn_oracle=churn,
        churn_base_round=churn_base_round,
        max_substeps=3,
        max_rounds=total_rounds + 4,
        # Pin the round count under churn: were every root to die, the
        # surviving forwarders are trivially complete and the engine would
        # otherwise stop short of the vectorized loop's fixed budget.
        stop_condition=(
            (lambda nodes, r: r >= total_rounds) if churn is not None else None
        ),
    )
    if outcome.final_alive is not None:
        alive[:] = outcome.final_alive

    estimates: dict[int, float] = {}
    sums: dict[int, float] = {}
    weights: dict[int, float] = {}
    history: list[float] = []
    for root in roots:
        node = nodes[int(root)]
        estimates[int(root)] = float(node.result())
        sums[int(root)] = float(node.s)
        weights[int(root)] = float(node.g)
        if trace_root is not None and int(root) == int(trace_root):
            # The in-round snapshots cover rounds 0 .. total - 2; the final
            # round's estimate is the node's terminal state.
            history = list(node.history)
            if total_rounds > 0:
                history.append(float(node.result()))
    return GossipAveResult(
        estimates=estimates,
        sums=sums,
        weights=weights,
        rounds=total_rounds,
        metrics=metrics,
        traced_root=trace_root,
        history=history,
    )
