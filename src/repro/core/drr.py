"""Phase I -- Distributed Random Ranking (Algorithm 1 of the paper).

Every node draws a rank uniformly at random from [0, 1] and then probes up to
``log2(n) - 1`` random nodes, one per round, until it finds a node of higher
rank; it connects to the first such node (sending it a *connection message*)
or becomes a root if the probe budget is exhausted.  Because every edge goes
from a lower rank to a strictly higher rank, the result is a forest.

:func:`run_drr` is the single entry point; the ``backend`` argument selects
the execution kernel:

* ``"vectorized"`` -- the columnar kernel: each probing round is one batch
  of targets / losses / rank comparisons over all still-searching nodes.
  Used by the large-``n`` scaling sweeps (Theorems 2-4, E2-E4 in DESIGN.md).
* ``"engine"`` -- :class:`DRRNode` state machines on the message-level
  simulator; probes, rank replies, and connection messages are individual
  messages.  Used by the fidelity and failure-injection tests.

Both backends execute the same per-round random process and consume the RNG
stream in the same order, so on a reliable network they produce the *same*
forest, probe counts, rounds, and message accounting for the same seed
(``tests/test_substrate.py`` asserts this).

Message accounting (both backends): each probe is one PROBE message plus one
RANK reply (if the probe arrived), and each successful attachment sends one
CONNECT message.  Total messages are therefore ~2x the number of probes,
which keeps the ``O(n log log n)`` shape of Theorem 4 (the paper charges one
message per probe; the factor of two is explicitly called out in DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..simulator.failures import FailureModel, LossOracle
from ..simulator.message import Message, MessageKind, Send
from ..simulator.metrics import MetricsCollector
from ..simulator.node import ProtocolNode, RoundContext
from ..simulator.rng import make_rng
from ..substrate import EngineKernel, VectorizedKernel, run_on
from .forest import Forest

__all__ = ["DRRResult", "DRRNode", "run_drr", "default_probe_budget"]


def default_probe_budget(n: int) -> int:
    """The paper's probe budget: ``log2(n) - 1`` samples per node (at least 1)."""
    return max(1, int(math.ceil(math.log2(max(2, n)))) - 1)


@dataclass
class DRRResult:
    """Output of Phase I.

    Attributes
    ----------
    forest:
        The ranking forest (child-side view: ``parent[i]`` is the node ``i``
        believes is its parent, or ``-1``).
    connect_delivered:
        ``connect_delivered[i]`` is True when node ``i``'s connection message
        reached its parent.  Under message loss a parent may not know about a
        child; Phase II uses this mask so convergecast only waits for the
        children the parent actually learned about (exactly what happens in
        the message-level implementation).
    probes:
        Number of probes each node sent.
    rounds:
        Rounds Phase I took (= max probes over nodes).
    metrics:
        Message/round accounting for the phase.
    """

    forest: Forest
    connect_delivered: np.ndarray
    probes: np.ndarray
    rounds: int
    metrics: MetricsCollector

    @property
    def known_child_mask(self) -> np.ndarray:
        """``mask[i]`` is True when node ``i`` is a child its parent knows about."""
        return (self.forest.parent >= 0) & self.connect_delivered

    @property
    def known_children(self) -> tuple[tuple[int, ...], ...]:
        """Children lists as seen by parents (connection message arrived)."""
        kids: list[list[int]] = [[] for _ in range(self.forest.n)]
        for child in np.flatnonzero(self.known_child_mask):
            kids[int(self.forest.parent[child])].append(int(child))
        return tuple(tuple(k) for k in kids)


def run_drr(
    n: int,
    rng: np.random.Generator | int | None = None,
    probe_budget: int | None = None,
    failure_model: FailureModel | None = None,
    alive: np.ndarray | None = None,
    metrics: MetricsCollector | None = None,
    ranks: np.ndarray | None = None,
    backend: str = "vectorized",
    tracer=None,
) -> DRRResult:
    """Run DRR over ``n`` nodes and return the ranking forest.

    Parameters
    ----------
    n:
        Number of nodes.
    rng:
        Seed or generator.
    probe_budget:
        Maximum probes per node; defaults to the paper's ``log2(n) - 1``.
    failure_model:
        Message-loss / crash model; defaults to a reliable network.
    alive:
        Optional precomputed liveness mask (overrides the failure model's
        crash sampling so composite pipelines can share one mask).
    metrics:
        Optional collector to accumulate into (a new one is created
        otherwise); the phase is recorded under the name ``"drr"``.
    ranks:
        Optional externally drawn ranks (used by ablation experiments that
        compare the [0,1] rank domain against the [1, n^3] integer domain).
    backend:
        Substrate backend: ``"vectorized"`` (default), ``"sharded"``, or ``"engine"``.
    tracer:
        Optional :class:`~repro.simulator.trace.Tracer` recording
        per-message events; engine-only (the columnar backends reject an
        enabled tracer at dispatch).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    rng = make_rng(rng)
    failure_model = failure_model or FailureModel()
    budget = probe_budget if probe_budget is not None else default_probe_budget(n)
    if budget < 1:
        raise ValueError("probe budget must be at least 1")
    metrics = metrics if metrics is not None else MetricsCollector(n=n)
    metrics.begin_phase("drr")

    # Shared preamble: crash sampling, rank drawing, and loss-oracle key
    # derivation happen exactly once, before backend dispatch, so both
    # kernels see the same world.
    if alive is None:
        alive = ~failure_model.sample_crashes(n, rng)
    alive = np.asarray(alive, dtype=bool)
    if ranks is None:
        ranks = rng.random(n)
    else:
        ranks = np.asarray(ranks, dtype=float)
        if ranks.shape != (n,):
            raise ValueError("ranks must have shape (n,)")
    oracle = LossOracle.for_run(failure_model, rng)

    return run_on(
        backend,
        vectorized=lambda kernel: _run_drr_vectorized(
            kernel, n, rng, budget, failure_model, oracle, alive, ranks, metrics
        ),
        engine=lambda kernel: _run_drr_engine(
            kernel, n, rng, budget, failure_model, oracle, alive, ranks, metrics,
            tracer=tracer,
        ),
        tracer=tracer,
    )


# --------------------------------------------------------------------------- #
# vectorized (columnar) backend
# --------------------------------------------------------------------------- #
def _run_drr_vectorized(
    kernel: VectorizedKernel,
    n: int,
    rng: np.random.Generator,
    budget: int,
    failure_model: FailureModel,
    oracle: LossOracle,
    alive: np.ndarray,
    ranks: np.ndarray,
    metrics: MetricsCollector,
) -> DRRResult:
    parent = np.full(n, -1, dtype=np.int64)
    connect_delivered = np.zeros(n, dtype=bool)
    probes_used = np.zeros(n, dtype=np.int64)
    # ``None`` tells the delivery primitives "nobody crashed" so they skip
    # the per-message liveness gathers entirely (accounting is unchanged).
    alive_arg = None if alive.all() else alive

    # The searching frontier is carried as a compacted, ascending id array
    # (rather than re-scanning an n-sized mask every round): filtering it
    # preserves the order `flatnonzero` would produce, so the shared RNG
    # stream is consumed exactly as before.
    active = np.flatnonzero(alive)

    rounds = 0
    while active.size and rounds < budget:
        rounds += 1
        metrics.record_round()
        probes_used[active] += 1
        targets = kernel.sample_uniform(rng, n, active.size, exclude=active)
        # One fused pass: PROBE fates, RANK reply fates, rank comparison.
        found = kernel.probe_exchange(
            metrics, oracle, targets,
            senders=active, ranks=ranks, round_index=rounds - 1, alive=alive_arg,
        )
        finders = active[found]
        if finders.size:
            chosen = np.asarray(targets[found], dtype=np.int64)
            parent[finders] = chosen
            connect_ok = kernel.deliver(
                metrics, oracle, MessageKind.CONNECT, chosen,
                senders=finders, round_index=rounds - 1, alive=alive_arg,
            )
            connect_delivered[finders] = connect_ok
            active = kernel.compact_frontier(active, found)

    forest = Forest(parent=parent, rank=ranks, alive=alive)
    forest.validate()
    return DRRResult(
        forest=forest,
        connect_delivered=connect_delivered,
        probes=probes_used,
        rounds=rounds,
        metrics=metrics,
    )


# --------------------------------------------------------------------------- #
# engine (message-level) backend
# --------------------------------------------------------------------------- #
class DRRNode(ProtocolNode):
    """Per-node state machine for Algorithm 1 on the simulator substrate."""

    def __init__(self, node_id: int, rank: float, probe_budget: int) -> None:
        super().__init__(node_id)
        self.rank = float(rank)
        self.probe_budget = int(probe_budget)
        self.parent: int | None = None
        self.children: list[int] = []
        self.probes_sent = 0
        self.found = False
        #: round index in which this node stopped probing (for diagnostics)
        self.finished_round: int | None = None

    # -- engine callbacks ------------------------------------------------ #
    def begin_round(self, ctx: RoundContext) -> list[Send]:
        if self.found or self.probes_sent >= self.probe_budget:
            if self.finished_round is None:
                self.finished_round = ctx.round_index
            return []
        self.probes_sent += 1
        target = ctx.random_node(exclude=self.node_id)
        return [Send(recipient=target, kind=MessageKind.PROBE, payload={"rank": self.rank})]

    def on_messages(self, ctx: RoundContext, messages: list[Message]) -> list[Send]:
        replies: list[Send] = []
        for message in messages:
            if message.kind == MessageKind.PROBE.value:
                replies.append(
                    Send(
                        recipient=message.sender,
                        kind=MessageKind.RANK,
                        payload={"rank": self.rank},
                    )
                )
            elif message.kind == MessageKind.RANK.value:
                if not self.found and float(message.get("rank")) > self.rank:
                    self.found = True
                    self.parent = message.sender
                    self.finished_round = ctx.round_index
                    replies.append(
                        Send(
                            recipient=message.sender,
                            kind=MessageKind.CONNECT,
                            payload={"child": self.node_id},
                        )
                    )
            elif message.kind == MessageKind.CONNECT.value:
                child = int(message.get("child", message.sender))
                if child not in self.children:
                    self.children.append(child)
        return replies

    def is_complete(self) -> bool:
        return self.found or self.probes_sent >= self.probe_budget

    def result(self) -> dict:
        return {
            "parent": self.parent,
            "children": tuple(sorted(self.children)),
            "rank": self.rank,
            "probes": self.probes_sent,
        }


def _run_drr_engine(
    kernel: EngineKernel,
    n: int,
    rng: np.random.Generator,
    budget: int,
    failure_model: FailureModel,
    oracle: LossOracle,
    alive: np.ndarray,
    ranks: np.ndarray,
    metrics: MetricsCollector,
    tracer=None,
) -> DRRResult:
    nodes = [DRRNode(i, float(ranks[i]), budget) for i in range(n)]
    # Four sub-steps so the full probe -> rank -> connect exchange completes
    # within the round it was initiated ("sample a node ... and get its rank"
    # in Algorithm 1), matching the vectorized backend's round accounting.
    outcome = kernel.run(
        nodes,
        rng=rng,
        metrics=metrics,
        failure_model=failure_model,
        alive=alive,
        loss_oracle=oracle,
        max_substeps=4,
        max_rounds=budget + 4,
        tracer=tracer,
    )

    parent = np.full(n, -1, dtype=np.int64)
    connect_delivered = np.zeros(n, dtype=bool)
    probes = np.zeros(n, dtype=np.int64)
    for node in nodes:
        probes[node.node_id] = node.probes_sent
        if node.parent is not None:
            parent[node.node_id] = node.parent
    for node in nodes:
        for child in node.children:
            connect_delivered[child] = True

    forest = Forest(parent=parent, rank=ranks, alive=alive)
    forest.validate()
    return DRRResult(
        forest=forest,
        connect_delivered=connect_delivered,
        probes=probes,
        rounds=outcome.rounds,
        metrics=metrics,
    )
