"""Phase III -- Data-spread (Algorithm 5).

Data-spread lets one distinguished root disseminate a value to every other
root: the spreader uses the value as its initial Gossip-max input and every
other root starts at ``-infinity``, after which a plain Gossip-max run makes
all roots adopt the spreader's value whp.  DRR-gossip-ave uses it so the root
of the largest tree (the only root whose Gossip-ave estimate Theorem 7
guarantees) can hand the final Average to the rest of the forest.
"""

from __future__ import annotations

import numpy as np

from ..simulator.failures import ChurnOracle, FailureModel
from ..simulator.metrics import MetricsCollector
from .gossip_max import GossipMaxResult, run_gossip_max

__all__ = ["run_data_spread"]


def run_data_spread(
    roots: np.ndarray,
    spreader: int,
    value: float,
    root_of: np.ndarray,
    n: int,
    failure_model: FailureModel | None = None,
    rng: np.random.Generator | int | None = None,
    metrics: MetricsCollector | None = None,
    gossip_rounds: int | None = None,
    sampling_rounds: int | None = None,
    alive: np.ndarray | None = None,
    churn: ChurnOracle | None = None,
    churn_base_round: int = 0,
    backend: str = "vectorized",
) -> GossipMaxResult:
    """Spread ``value`` from root ``spreader`` to all roots (Algorithm 5).

    The result's ``estimates`` map every root to the value it ended up with;
    on a reliable network every entry equals ``value``.

    Notes
    -----
    The paper initialises the other roots to ``-infinity``.  We use ``-inf``
    as well; the value being spread must therefore be finite, which Algorithm
    5 also requires (``|x_ru| < inf``).
    """
    roots = np.asarray(roots, dtype=np.int64)
    if not np.isfinite(value):
        raise ValueError("Data-spread requires a finite value to spread")
    if spreader not in set(int(r) for r in roots):
        raise ValueError(f"spreader {spreader} is not one of the roots")
    initial = np.full(roots.shape, -np.inf, dtype=float)
    initial[np.flatnonzero(roots == spreader)[0]] = float(value)
    return run_gossip_max(
        roots=roots,
        root_values=initial,
        root_of=root_of,
        n=n,
        failure_model=failure_model,
        rng=rng,
        metrics=metrics,
        gossip_rounds=gossip_rounds,
        sampling_rounds=sampling_rounds,
        phase_name="data-spread",
        alive=alive,
        churn=churn,
        churn_base_round=churn_base_round,
        backend=backend,
    )
