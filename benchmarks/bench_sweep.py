"""Sweep-throughput benchmark: local pool vs distributed queue workers.

As a script (``python benchmarks/bench_sweep.py``) it measures cells/sec
for the same cell workload on three execution paths and appends one
``sweep_throughput`` row per path to ``BENCH_substrate.json``:

* ``local-P1`` — the serial in-process baseline;
* ``local-P4`` — the ``ProcessPoolExecutor`` fan-out;
* ``queue-2`` — two real ``python -m repro worker`` processes pulling
  claims from a shared store (workers are pre-started against an empty
  queue with ``--linger`` so the measured window covers *draining*, not
  interpreter start-up).

The distributed path must reach ``--min-ratio`` (default 1.8) times the
serial cells/sec — enforced only when the host has at least 2 CPU cores;
a single-core runner cannot exhibit a multiprocessing speedup, so there
the ratio is measured and reported but does not fail the run (the same
honesty rule as ``bench_substrate.py``'s sharded gates).  Queue-path
integrity is always asserted: every queue row terminal ``done``, every
cell claimed exactly once, and result rows identical in number to the
local baseline's.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.api import RunSpec
from repro.harness.benchlog import DEFAULT_BENCH_FILE, append_bench_rows
from repro.orchestration import ResultStore, SweepRunner, cells_from_run_specs

REPO_ROOT = Path(__file__).resolve().parents[1]

#: rows accumulated by the measurements, flushed to BENCH_substrate.json
BENCH_ROWS: list[dict] = []


def record(variant: str, *, n: int, cells: int, wall_s: float,
           shards: int | None = None) -> None:
    BENCH_ROWS.append(
        {
            "bench": "sweep_throughput",
            "protocol": "drr-gossip",
            "n": int(n),
            "backend": variant,
            "shards": shards,
            "wall_s": float(wall_s),
            "messages": None,
            "rounds": int(cells),  # cells drained in the measured window
        }
    )


def make_cells(count: int, n: int):
    """``count`` distinct engine-backend drr-gossip cells (~0.1-0.4 s each)."""
    specs = [
        RunSpec(protocol="drr-gossip", params={"n": n}, backend="engine", seed=1000 + i)
        for i in range(count)
    ]
    return cells_from_run_specs(specs)


def run_local(cells, store_path: Path, jobs: int) -> float:
    with ResultStore(store_path) as store:
        start = time.perf_counter()
        report = SweepRunner(store, jobs=jobs).run_cells(cells, name="bench")
        wall = time.perf_counter() - start
        if report.failed or report.executed != len(cells):
            raise RuntimeError(f"local jobs={jobs} run went wrong: {report.summary()}")
    return wall


def run_queue(cells, store_path: Path, workers: int) -> float:
    """Pre-start ``workers`` processes, then time enqueue-to-drained."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    ResultStore(store_path).close()  # workers refuse to start on a missing store
    procs = [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro", "worker",
                "--store", str(store_path), "--worker-id", f"bench-w{i}",
                "--poll", "0.02", "--linger", "60",
            ],
            env=env, cwd=str(REPO_ROOT),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        for i in range(workers)
    ]
    try:
        time.sleep(2.0)  # let the interpreters boot against the empty queue
        with ResultStore(store_path) as store:
            start = time.perf_counter()
            store.enqueue_cells(
                (c.experiment, c.param_hash, c.seed, c.spec_json()) for c in cells
            )
            deadline = start + 600
            while time.perf_counter() < deadline:
                depth = store.queue_depth()
                if depth["pending"] == 0 and depth["claimed"] == 0:
                    break
                time.sleep(0.02)
            else:
                raise RuntimeError("queue never drained inside 600 s")
            wall = time.perf_counter() - start
            rows = store.queue_cells()
            if not all(row.state == "done" for row in rows):
                raise RuntimeError("queue drain left non-done rows behind")
            if not all(row.attempt == 1 for row in rows):
                raise RuntimeError("a cell was claimed more than once (duplicate execution)")
            completed = store.completed_cells()
            missing = [c for c in cells if c.key not in completed]
            if missing:
                raise RuntimeError(f"{len(missing)} cell(s) have no result row")
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            proc.wait(timeout=30)
    return wall


def smoke_throughput(cell_count: int, cell_n: int, workers: int,
                     min_ratio: float, workdir: Path) -> bool:
    cells = make_cells(cell_count, cell_n)

    serial_s = run_local(cells, workdir / "local-p1.sqlite", jobs=1)
    serial_rate = cell_count / serial_s
    record("local-P1", n=cell_n, cells=cell_count, wall_s=serial_s)
    print(f"local-P1: {cell_count} cells in {serial_s:.2f}s -> {serial_rate:.2f} cells/s")

    pool_s = run_local(cells, workdir / "local-p4.sqlite", jobs=4)
    record("local-P4", n=cell_n, cells=cell_count, wall_s=pool_s, shards=4)
    print(f"local-P4: {cell_count} cells in {pool_s:.2f}s -> {cell_count / pool_s:.2f} cells/s")

    queue_s = run_queue(cells, workdir / "queue.sqlite", workers=workers)
    queue_rate = cell_count / queue_s
    record(f"queue-{workers}", n=cell_n, cells=cell_count, wall_s=queue_s, shards=workers)
    ratio = queue_rate / serial_rate
    print(
        f"queue-{workers}: {cell_count} cells in {queue_s:.2f}s -> "
        f"{queue_rate:.2f} cells/s ({ratio:.2f}x the serial baseline)"
    )

    cores = os.cpu_count() or 1
    if cores >= 2:
        if ratio < min_ratio:
            print(f"FAIL: queue-{workers} throughput {ratio:.2f}x below the required {min_ratio:g}x")
            return False
        print(f"OK: {workers} queue workers drain >= {min_ratio:g}x faster than serial")
    else:
        print(
            f"NOTE: host has {cores} CPU core(s); the {min_ratio:g}x queue ratio "
            "is reported, not enforced (no parallel hardware to win on)"
        )
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cells", type=int, default=8, help="sweep cells per variant")
    parser.add_argument(
        "--cell-n", type=int, default=1024,
        help="nodes per engine-backend drr-gossip cell (sets per-cell cost)",
    )
    parser.add_argument("--workers", type=int, default=2, help="queue worker processes")
    parser.add_argument(
        "--min-ratio", type=float, default=1.8,
        help="required queue-vs-serial cells/sec ratio (enforced on >= 2 cores)",
    )
    parser.add_argument(
        "--workdir", type=str, default="results/bench-sweep",
        help="scratch directory for the per-variant stores",
    )
    parser.add_argument(
        "--json", type=str, default=DEFAULT_BENCH_FILE,
        help="benchmark trajectory file to append to",
    )
    parser.add_argument("--no-json", action="store_true", help="do not write the trajectory file")
    args = parser.parse_args(argv)

    if args.cells < 1 or args.workers < 1:
        parser.error("--cells and --workers must be >= 1")
    workdir = Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    for stale in workdir.glob("*.sqlite"):
        stale.unlink()

    ok = smoke_throughput(args.cells, args.cell_n, args.workers, args.min_ratio, workdir)
    if not args.no_json and BENCH_ROWS:
        path = append_bench_rows(BENCH_ROWS, args.json)
        print(f"recorded {len(BENCH_ROWS)} benchmark row(s) in {path}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
