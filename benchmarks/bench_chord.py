"""E9 -- Section 4: DRR-gossip vs uniform gossip over Chord (Theorem 14)."""

from __future__ import annotations

from conftest import emit

from repro.harness import run_chord_comparison


def test_chord_drr_vs_uniform_gossip(benchmark, full_sweep):
    ns = (128, 256, 512, 1024) if full_sweep else (128, 256)
    result = benchmark.pedantic(
        run_chord_comparison,
        kwargs=dict(ns=ns, repetitions=2, seed=7),
        iterations=1,
        rounds=1,
    )
    emit(result)
    ratios = [row["message_ratio_uniform_over_drr"] for row in result.rows]
    # Section 4: uniform gossip needs O(n log^2 n) messages on Chord while
    # DRR-gossip needs O(n log n) -- uniform must cost strictly more, and the
    # gap must not shrink as n grows (it grows like log n asymptotically).
    assert all(r > 1.5 for r in ratios)
    assert ratios[-1] >= 0.9 * ratios[0]
    for row in result.rows:
        # both normalised ratios stay bounded across the sweep
        assert row["drr_msgs_over_nlogn"] < 8.0
        assert row["uniform_msgs_over_nlog2n"] < 4.0
