"""E9 -- Section 4: DRR-gossip vs uniform gossip over Chord (Theorem 14)."""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.harness import run_chord_comparison
from repro.substrate import run_chord_lookups
from repro.topology import ChordNetwork


def test_chord_drr_vs_uniform_gossip(benchmark, full_sweep):
    ns = (128, 256, 512, 1024) if full_sweep else (128, 256)
    result = benchmark.pedantic(
        run_chord_comparison,
        kwargs=dict(ns=ns, repetitions=2, seed=7),
        iterations=1,
        rounds=1,
    )
    emit(result)
    ratios = [row["message_ratio_uniform_over_drr"] for row in result.rows]
    # Section 4: uniform gossip needs O(n log^2 n) messages on Chord while
    # DRR-gossip needs O(n log n) -- uniform must cost strictly more, and the
    # gap must not shrink as n grows (it grows like log n asymptotically).
    assert all(r > 1.5 for r in ratios)
    assert ratios[-1] >= 0.9 * ratios[0]
    for row in result.rows:
        # both normalised ratios stay bounded across the sweep
        assert row["drr_msgs_over_nlogn"] < 8.0
        assert row["uniform_msgs_over_nlog2n"] < 4.0


def test_chord_reply_batching_no_regression(benchmark):
    """count_reply rides the batched cursor arrays: one extra round, one
    message per delivered route, and NO per-route Python work — benchmarked
    so a regression back to scalar replies shows up in the history."""
    rng = np.random.default_rng(0)
    chord = ChordNetwork(2048, rng)
    sources = rng.integers(0, 2048, size=2048)
    targets = rng.integers(0, chord.ring_size, size=2048)
    plain = run_chord_lookups(chord, sources, targets, rng=1)
    result = benchmark(run_chord_lookups, chord, sources, targets, rng=1, count_reply=True)
    assert np.array_equal(result.owners, plain.owners)
    assert result.replied.all()
    assert result.messages == plain.messages + int(result.delivered.sum())
    assert result.rounds == plain.rounds + 1
