"""Orchestration: parallel vs serial sweep throughput, and resume overhead.

Unlike the E1-E12 benchmarks this one measures the *platform*, not the
protocols: the same multi-experiment grid is executed through the sweep
runner with one worker and with several, and the speedup plus the cost of a
skip-completed resume pass are reported.  Cells are deliberately sized so
per-cell work dominates process-pool overhead at ``--full-sweep`` scale
while the default stays CI-friendly.
"""

from __future__ import annotations

import os
import time

from repro.orchestration import (
    ExperimentPlan,
    ResultStore,
    SweepDefinition,
    SweepRunner,
    expand_cells,
)

#: at least 2 so the ProcessPoolExecutor path is always exercised, even on
#: single-core CI runners where the speedup itself degenerates to ~1x.
PARALLEL_JOBS = max(2, min(4, os.cpu_count() or 1))


def _definition(full_sweep: bool) -> SweepDefinition:
    ns = [256, 512, 1024] if full_sweep else [64, 128]
    reps = 3 if full_sweep else 2
    return SweepDefinition(
        name="bench",
        seed=1,
        repetitions=reps,
        plans=(
            ExperimentPlan(experiment="table1", grid={"ns": ns, "repetitions": 1}),
            ExperimentPlan(experiment="forest", grid={"ns": ns, "repetitions": 1}),
            ExperimentPlan(experiment="lower-bound", grid={"ns": ns, "repetitions": 1}),
            ExperimentPlan(experiment="phase-breakdown", grid={"ns": ns, "repetitions": 1}),
        ),
    )


def _run_sweep(definition: SweepDefinition, tmp_path, jobs: int, tag: str):
    with ResultStore(tmp_path / f"{tag}.sqlite") as store:
        report = SweepRunner(store, jobs=jobs).run(definition)
        assert report.failed == 0
        return report


def test_sweep_serial(benchmark, full_sweep, tmp_path):
    definition = _definition(full_sweep)
    report = benchmark.pedantic(
        _run_sweep, args=(definition, tmp_path, 1, "serial"), iterations=1, rounds=1
    )
    assert report.executed == len(expand_cells(definition))


def test_sweep_parallel(benchmark, full_sweep, tmp_path):
    definition = _definition(full_sweep)
    report = benchmark.pedantic(
        _run_sweep,
        args=(definition, tmp_path, PARALLEL_JOBS, "parallel"),
        iterations=1,
        rounds=1,
    )
    assert report.executed == len(expand_cells(definition))


def test_parallel_speedup_and_resume(full_sweep, tmp_path):
    """Direct comparison in one process: speedup ratio + resume cost."""
    definition = _definition(full_sweep)
    cells = len(expand_cells(definition))

    start = time.perf_counter()
    _run_sweep(definition, tmp_path, 1, "cmp-serial")
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    _run_sweep(definition, tmp_path, PARALLEL_JOBS, "cmp-parallel")
    parallel_s = time.perf_counter() - start

    # resume against the already-filled parallel store: zero cells execute
    with ResultStore(tmp_path / "cmp-parallel.sqlite") as store:
        start = time.perf_counter()
        resumed = SweepRunner(store, jobs=1).run(definition)
        resume_s = time.perf_counter() - start
    assert resumed.executed == 0
    assert resumed.skipped == cells

    print()
    print(f"cells: {cells}, workers: {PARALLEL_JOBS}")
    print(f"serial   : {serial_s:.2f}s ({cells / serial_s:.1f} cells/s)")
    print(f"parallel : {parallel_s:.2f}s ({cells / parallel_s:.1f} cells/s, "
          f"{serial_s / parallel_s:.2f}x speedup)")
    print(f"resume   : {resume_s * 1000:.0f}ms for {cells} cached cells")
    # The pool must never be pathologically slower than serial (generous
    # bound: tiny CI cells are dominated by fork overhead).
    assert parallel_s < 5.0 * serial_s + 5.0
    # resume never recomputes, so it must be far cheaper than the sweep
    assert resume_s < max(0.5 * serial_s, 1.0)
