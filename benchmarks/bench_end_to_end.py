"""E7 -- End-to-end DRR-gossip correctness and cost for every aggregate."""

from __future__ import annotations

from conftest import emit

from repro.harness import run_end_to_end_accuracy


def test_every_aggregate_end_to_end(benchmark, full_sweep):
    ns = (256, 1024) if full_sweep else (256, 512)
    result = benchmark.pedantic(
        run_end_to_end_accuracy,
        kwargs=dict(ns=ns, repetitions=2, seed=5),
        iterations=1,
        rounds=1,
    )
    emit(result)
    for row in result.rows:
        if row["aggregate"] in ("max", "min", "count", "rank"):
            assert row["max_rel_error"] == 0.0
        else:  # average, sum converge with bounded relative error
            assert row["max_rel_error"] < 1e-2
        assert row["coverage"] == 1.0


def test_end_to_end_under_loss(benchmark):
    result = benchmark.pedantic(
        run_end_to_end_accuracy,
        kwargs=dict(ns=(512,), repetitions=2, seed=6, delta=0.05),
        iterations=1,
        rounds=1,
    )
    emit(result)
    loss_sensitive = []
    for row in result.rows:
        # with 5% message loss coverage drops but stays high, and Average
        # stays within a few percent (its push-sum mass is spread over all
        # roots, so lost messages bias s and g together).  Sum/Count/Rank
        # concentrate the weight mass at a single root, so their worst-over-
        # repetitions error is heavy-tailed (~0.1-2.3 across seeds at this
        # n/delta).  The run is deterministic (seed 6: sum=1.22, count=0.40,
        # rank=0.08), so the bounds leave modest headroom over today's values
        # rather than covering the whole cross-seed tail.
        assert row["coverage"] > 0.6
        if row["aggregate"] == "average":
            assert row["max_rel_error"] < 0.15
        if row["aggregate"] in ("sum", "count", "rank"):
            assert row["max_rel_error"] < 1.5
            loss_sensitive.append(row["max_rel_error"])
    assert len(loss_sensitive) == 3
    assert sum(loss_sensitive) / 3 < 0.8
