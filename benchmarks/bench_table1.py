"""E1 -- Table 1: DRR-gossip vs uniform gossip vs efficient gossip."""

from __future__ import annotations

from conftest import emit

from repro.core import Aggregate
from repro.harness import run_table1


def test_table1_average(benchmark, full_sweep):
    ns = (256, 512, 1024, 2048, 4096) if full_sweep else (256, 512, 1024)
    result = benchmark.pedantic(
        run_table1,
        kwargs=dict(ns=ns, repetitions=2, seed=1, aggregate=Aggregate.AVERAGE),
        iterations=1,
        rounds=1,
    )
    emit(result)
    by_algo = {}
    for row in result.rows:
        by_algo.setdefault(row["algorithm"], []).append(row)
    # Reproduction criteria (shape, not constants):
    # 1. uniform gossip spends more messages than DRR-gossip at the largest n,
    largest = max(ns)
    drr_msgs = [r["messages"] for r in by_algo["drr-gossip"] if r["n"] == largest]
    uni_msgs = [r["messages"] for r in by_algo["uniform-gossip"] if r["n"] == largest]
    assert sum(drr_msgs) < sum(uni_msgs)
    # 2. DRR-gossip and uniform gossip rounds stay O(log n): the normalised
    #    ratio may not blow up across the sweep,
    for algo in ("drr-gossip", "uniform-gossip"):
        ratios = [r["rounds_over_logn"] for r in by_algo[algo]]
        assert max(ratios) < 3.0 * min(ratios) + 1e-9
    # 3. efficient gossip pays the log log n time penalty: it always needs
    #    more rounds than the time-optimal uniform gossip.  (DRR-gossip is
    #    also Theta(log n) rounds -- checked by the flatness above -- but its
    #    implemented constant is larger than uniform gossip's, so the
    #    asymptotic DRR-vs-efficient time gap only opens beyond laptop-scale
    #    n; EXPERIMENTS.md discusses this.)
    for n in ns:
        eff = [r["rounds"] for r in by_algo["efficient-gossip"] if r["n"] == n]
        uni = [r["rounds"] for r in by_algo["uniform-gossip"] if r["n"] == n]
        assert min(eff) > max(uni)


def test_table1_max(benchmark, full_sweep):
    ns = (512, 2048) if full_sweep else (512, 1024)
    result = benchmark.pedantic(
        run_table1,
        kwargs=dict(ns=ns, repetitions=1, seed=2, aggregate=Aggregate.MAX),
        iterations=1,
        rounds=1,
    )
    emit(result)
    for row in result.rows:
        assert row["max_rel_error"] == 0.0  # Max is exact for every protocol
