"""E2-E4 -- Theorems 2-4: DRR forest statistics and complexity."""

from __future__ import annotations

from conftest import emit

from repro.harness import run_forest_statistics
from repro.harness.experiments import run_ablation


def test_tree_count_and_size(benchmark, full_sweep):
    ns = (256, 512, 1024, 2048, 4096, 8192) if full_sweep else (256, 512, 1024, 2048)
    result = benchmark.pedantic(
        run_forest_statistics,
        kwargs=dict(ns=ns, repetitions=3, seed=2),
        iterations=1,
        rounds=1,
    )
    emit(result)
    for row in result.rows:
        # Theorem 2: #trees = Theta(n / log n); the measured/predicted ratio
        # stays within a constant band across the sweep.
        assert 0.3 < row["trees_over_n_div_logn"] < 3.0
        # Theorem 3: max tree size = O(log n).
        assert row["max_tree_size_over_logn"] < 20.0
        # Theorem 4: rounds <= log2(n) and messages grow like n log log n.
        assert row["rounds_over_logn"] <= 1.2
        assert row["messages_over_nloglogn"] < 6.0


def test_drr_complexity_is_quasilinear(benchmark):
    result = benchmark.pedantic(
        run_forest_statistics,
        kwargs=dict(ns=(512, 1024, 2048, 4096), repetitions=2, seed=12),
        iterations=1,
        rounds=1,
    )
    emit(result)
    # messages per node must grow much slower than log n: going from n=512 to
    # n=4096 multiplies log n by 1.33 but log log n only by ~1.10.
    first, last = result.rows[0], result.rows[-1]
    growth = last["messages_per_node"] / first["messages_per_node"]
    assert growth < 1.25


def test_probe_budget_ablation(benchmark):
    result = benchmark.pedantic(
        run_ablation, kwargs=dict(n=2048, repetitions=2, seed=10), iterations=1, rounds=1
    )
    emit(result)
    by_variant = {row["variant"]: row for row in result.rows}
    # Halving the probe budget increases the number of trees; doubling it
    # decreases them (more chances to find a higher-ranked parent).
    assert by_variant["probe budget (half budget)"]["trees"] > by_variant["probe budget (paper: log2(n)-1)"]["trees"]
    assert by_variant["probe budget (double budget)"]["trees"] < by_variant["probe budget (half budget)"]["trees"]
    # The rank domain ([0,1] vs [1,n^3]) does not change the structure.
    a = by_variant["rank domain (ranks in [0,1])"]["trees"]
    b = by_variant["rank domain (ranks in [1,n^3])"]["trees"]
    assert abs(a - b) < 0.5 * max(a, b)
