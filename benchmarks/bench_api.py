"""Benchmarks and CI smoke checks of the declarative run API.

Two uses:

* Under pytest-benchmark (``pytest benchmarks/bench_api.py``) it tracks the
  cost of spec validation, canonical hashing, and dispatch so regressions
  in the API layer show up in the benchmark history.
* As a script (``python benchmarks/bench_api.py``) it runs the CI smoke
  check: dispatching DRR through ``repro.run(RunSpec(...))`` at ``--n``
  (default 10^5) nodes must add less than ``--max-overhead`` percent
  (default 5) over calling ``run_drr`` directly, and a serialise →
  deserialise → re-run cycle must reproduce the direct dispatch exactly.
  A telemetry-enabled dispatch must reproduce the plain dispatch exactly
  (``same_outcome``, which ignores the telemetry section) with unchanged
  spec/param hashes, and its wall cost is reported.  Exit status is
  non-zero when any bar is missed.
"""

from __future__ import annotations

import argparse
import sys
import time

import repro
from repro import RunSpec
from repro.core import run_drr


# --------------------------------------------------------------------------- #
# pytest-benchmark micro-benchmarks
# --------------------------------------------------------------------------- #
def test_bench_spec_construction_and_hash(benchmark):
    def build():
        spec = RunSpec(protocol="drr-gossip", params={"n": 4096, "aggregate": "average"}, seed=3)
        return spec.param_hash()

    benchmark(build)


def test_bench_spec_dispatch(benchmark):
    spec = RunSpec(protocol="drr", params={"n": 4096}, seed=1)
    benchmark(repro.run, spec)


def test_bench_spec_json_round_trip(benchmark):
    spec = RunSpec(
        protocol="drr-gossip",
        params={"n": 4096, "aggregate": "average", "workload": "uniform"},
        seed=3,
    )
    benchmark(lambda: RunSpec.from_json(spec.to_json()))


# --------------------------------------------------------------------------- #
# CI smoke mode
# --------------------------------------------------------------------------- #
def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=100_000, help="DRR network size")
    parser.add_argument("--repeats", type=int, default=5, help="timing repetitions (best-of)")
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=5.0,
        help="maximum allowed spec-dispatch overhead over direct run_drr, in percent",
    )
    args = parser.parse_args(argv)

    seed = 1
    spec = RunSpec(protocol="drr", params={"n": args.n}, seed=seed)

    # warm-up (imports, allocator, registries) outside the timed region
    run_drr(args.n, rng=seed)
    repro.run(spec)

    direct_s = _best_of(lambda: run_drr(args.n, rng=seed), args.repeats)
    spec_s = _best_of(lambda: repro.run(spec), args.repeats)
    overhead_pct = 100.0 * (spec_s - direct_s) / direct_s
    print(f"direct run_drr(n={args.n}):   best {direct_s * 1e3:8.2f} ms")
    print(f"repro.run(RunSpec(drr)):      best {spec_s * 1e3:8.2f} ms")
    print(f"spec-dispatch overhead:       {overhead_pct:+.2f}% (bar: < {args.max_overhead:.1f}%)")

    ok = overhead_pct < args.max_overhead

    # correctness smoke: serialise -> deserialise -> re-run must be exact
    result = repro.run(spec)
    replay = repro.run(RunSpec.from_json(spec.to_json()))
    exact = replay.same_outcome(result)
    print(f"json round-trip reproduces:   {'yes' if exact else 'NO'}")
    ok = ok and exact

    # telemetry neutrality: an enabled run reproduces the plain run exactly,
    # identity hashes ignore the toggle, and the enabled cost is reported.
    telemetry_spec = spec.with_telemetry()
    telemetry_s = _best_of(lambda: repro.run(telemetry_spec), args.repeats)
    telemetry_pct = 100.0 * (telemetry_s - direct_s) / direct_s
    traced = repro.run(telemetry_spec)
    neutral = traced.same_outcome(result) and traced.telemetry is not None
    hashes_stable = (
        telemetry_spec.spec_hash() == spec.spec_hash()
        and telemetry_spec.param_hash() == spec.param_hash()
    )
    print(f"repro.run(+telemetry):        best {telemetry_s * 1e3:8.2f} ms ({telemetry_pct:+.2f}%, reported only)")
    print(f"telemetry-neutral outcome:    {'yes' if neutral else 'NO'}")
    print(f"hashes ignore telemetry:      {'yes' if hashes_stable else 'NO'}")
    ok = ok and neutral and hashes_stable

    if not ok:
        print("bench_api: FAILED", file=sys.stderr)
        return 1
    print("bench_api: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
