"""Benchmark and CI gate for the simulation service's result cache.

As a script (``python benchmarks/bench_service.py``) it measures the two
costs that justify the service's content-addressed design at ``--n``
(default 10^4, engine backend so the execution is honestly expensive):

* **submit -> result latency**: POST a novel spec, drain it with a real
  queue worker, poll until the result envelope comes back — the full
  price of a cache miss, split into execution time and service overhead;
* **cached-hit cost**: re-POST the identical spec ``--cached-requests``
  times over one keep-alive connection — each is a 200 with
  ``cached: true`` served straight from the store's spec-hash index.

The enforced bar (``--min-cache-ratio``, default 50) is that a cached
hit is at least that many times cheaper than the execution it avoids —
the whole point of content addressing is that duplicate submissions cost
an indexed SELECT, not a simulation.  Both measurements append rows to
``BENCH_substrate.json`` (the perf trajectory ``drr-gossip results
--bench`` prints) unless ``--no-json`` is given.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.harness.benchlog import DEFAULT_BENCH_FILE, append_bench_rows
from repro.orchestration import QueueWorker, ResultStore
from repro.service import ServiceClient, ServiceServer

#: rows accumulated by the gate, flushed to BENCH_substrate.json
BENCH_ROWS: list[dict] = []


def record(bench: str, *, protocol: str, n: int, backend: str, wall_s: float,
           messages: int | None = None, rounds: int | None = None) -> None:
    BENCH_ROWS.append(
        {
            "bench": bench,
            "protocol": protocol,
            "n": int(n),
            "backend": backend,
            "shards": None,
            "wall_s": float(wall_s),
            "messages": messages,
            "rounds": rounds,
        }
    )


def smoke_service_cache(n: int, cached_requests: int, min_ratio: float) -> bool:
    spec = {"protocol": "drr-gossip", "params": {"n": n}, "backend": "engine", "seed": 1}
    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        store_path = Path(tmp) / "svc.sqlite"
        with ServiceServer(store_path, port=0) as server, ServiceClient(server.url) as client:
            # -- cache miss: submit -> execute -> result ---------------- #
            submitted = client.submit(spec)
            assert submitted["cached"] is False, "fresh store must not have this spec"
            run_id = submitted["run_id"]

            def drain() -> None:
                with ResultStore(store_path) as store:
                    QueueWorker(store, worker_id="bench", poll_interval_s=0.05).drain()

            start = time.perf_counter()
            worker = threading.Thread(target=drain)
            worker.start()
            status = client.wait_for(run_id, timeout_s=600, poll_s=0.1)
            envelope = client.result(run_id)
            miss_s = time.perf_counter() - start
            worker.join(timeout=60)
            execution_s = float(status["duration_s"])
            result = envelope["result"]
            record("service-miss", protocol="drr-gossip", n=n, backend="engine",
                   wall_s=miss_s, messages=result["messages"], rounds=result["rounds"])

            # -- cached hits: identical spec re-POSTed ------------------ #
            # one warm-up so connection setup is not billed to the cache
            assert client.submit(spec)["cached"] is True
            start = time.perf_counter()
            for _ in range(cached_requests):
                hit = client.submit(spec)
                assert hit["cached"] is True and hit["state"] == "done"
            cached_total_s = time.perf_counter() - start
            cached_s = cached_total_s / cached_requests
            record("service-cached-hit", protocol="drr-gossip", n=n, backend="engine",
                   wall_s=cached_s, rounds=result["rounds"])

    ratio = execution_s / cached_s if cached_s > 0 else float("inf")
    print(f"service @ n={n} (engine backend):")
    print(f"  submit->result miss : {miss_s:.2f}s total "
          f"({execution_s:.2f}s execution, {miss_s - execution_s:.2f}s service+poll)")
    print(f"  cached hit          : {cached_s * 1000:.2f}ms/request "
          f"({cached_requests / cached_total_s:.0f} req/s over {cached_requests} requests)")
    print(f"  cache advantage     : {ratio:.0f}x cheaper than execution "
          f"(bar: >= {min_ratio:.0f}x)")
    if ratio < min_ratio:
        print(f"FAIL: cached hits only {ratio:.1f}x cheaper than execution "
              f"(need >= {min_ratio:.0f}x)", file=sys.stderr)
        return False
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=10_000,
                        help="nodes for the executed spec (engine backend)")
    parser.add_argument("--cached-requests", type=int, default=100,
                        help="identical re-submissions to time the cache with")
    parser.add_argument("--min-cache-ratio", type=float, default=50.0,
                        help="required execution-cost / cached-hit-cost ratio")
    parser.add_argument("--json", default=DEFAULT_BENCH_FILE,
                        help="bench trajectory file to append rows to")
    parser.add_argument("--no-json", action="store_true",
                        help="skip writing BENCH_substrate.json rows")
    args = parser.parse_args(argv)

    ok = smoke_service_cache(args.n, args.cached_requests, args.min_cache_ratio)
    if not args.no_json and BENCH_ROWS:
        path = append_bench_rows(BENCH_ROWS, args.json)
        print(f"recorded {len(BENCH_ROWS)} benchmark row(s) in {path}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
