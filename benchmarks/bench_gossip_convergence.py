"""E5 & E6 -- Theorems 5-7, 10: Gossip-max and Gossip-ave convergence."""

from __future__ import annotations

from conftest import emit

from repro.harness import run_gossip_ave_convergence, run_gossip_max_convergence


def test_gossip_max_reaches_all_roots(benchmark, full_sweep):
    ns = (256, 1024, 4096) if full_sweep else (256, 1024)
    result = benchmark.pedantic(
        run_gossip_max_convergence,
        kwargs=dict(ns=ns, deltas=(0.0, 0.05, 0.1), repetitions=3, seed=3),
        iterations=1,
        rounds=1,
    )
    emit(result)
    for row in result.rows:
        # Theorem 5: a constant fraction of roots holds Max after the gossip
        # procedure; Theorem 6: all roots hold it after the sampling procedure.
        assert row["roots_with_max_after_gossip"] > 0.3
        assert row["roots_with_max_after_sampling"] > 0.99
        # Phase III stays O(n) messages.
        assert row["gossip_max_messages_per_node"] < 14.0


def test_gossip_ave_relative_error(benchmark, full_sweep):
    ns = (256, 1024, 4096) if full_sweep else (256, 1024)
    result = benchmark.pedantic(
        run_gossip_ave_convergence,
        kwargs=dict(ns=ns, workloads=("uniform", "bimodal", "signed", "zero-mean"), repetitions=2, seed=4),
        iterations=1,
        rounds=1,
    )
    emit(result)
    for row in result.rows:
        # Theorem 7: the largest-tree root converges to tiny relative error
        # within O(log n) rounds, for every value distribution including
        # mixed-sign and zero-average inputs.
        assert row["final_rel_error_mean"] < 1e-3
        assert row["rounds_to_1pct_over_logn"] < 6.0
