"""Shared configuration for the benchmark harness.

Every module under ``benchmarks/`` regenerates one table/figure of
EXPERIMENTS.md (experiment ids E1-E12 in DESIGN.md).  The drivers live in
:mod:`repro.harness.experiments`; the benchmark layer adds wall-clock timing
through pytest-benchmark and prints the measured table so running::

    pytest benchmarks/ --benchmark-only -s

reproduces both the numbers and the timings.  Sweeps here use deliberately
small ``n`` so the whole suite finishes in minutes; the CLI (``drr-gossip
report``) runs the full-size sweeps.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--full-sweep",
        action="store_true",
        default=False,
        help="run the benchmark experiments at the paper-scale sweep sizes",
    )


@pytest.fixture(scope="session")
def full_sweep(request) -> bool:
    return bool(request.config.getoption("--full-sweep"))


def emit(result) -> None:
    """Print an experiment table beneath the benchmark output."""
    print()
    print(result.table())
    for note in result.notes:
        print(f"note: {note}")
