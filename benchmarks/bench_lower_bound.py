"""E10 -- Theorem 15: the Omega(n log n) address-oblivious lower bound."""

from __future__ import annotations

from conftest import emit

from repro.harness import run_lower_bound_experiment


def test_address_oblivious_gap(benchmark, full_sweep):
    ns = (128, 256, 512, 1024) if full_sweep else (128, 256, 512)
    result = benchmark.pedantic(
        run_lower_bound_experiment,
        kwargs=dict(ns=ns, repetitions=2, seed=8),
        iterations=1,
        rounds=1,
    )
    emit(result)
    rows = result.rows
    # Address-oblivious aggregate computation pays Theta(log n) messages per
    # node: the per-node count grows noticeably across the sweep ...
    assert rows[-1]["oblivious_messages_per_node"] > rows[0]["oblivious_messages_per_node"]
    # ... and tracks the n log n bound within a constant band.
    for row in rows:
        assert 0.2 < row["oblivious_over_nlogn"] < 3.0
    # Rumor spreading (a single rumor, address-oblivious) stays near
    # n log log n: per-node messages grow far slower than the oblivious
    # aggregate cost across the same sweep.
    rumor_growth = rows[-1]["rumor_messages_per_node"] / rows[0]["rumor_messages_per_node"]
    oblivious_growth = rows[-1]["oblivious_messages_per_node"] / rows[0]["oblivious_messages_per_node"]
    assert rumor_growth < oblivious_growth + 0.25
    # DRR-gossip (non-address-oblivious) also stays on the n log log n track.
    for row in rows:
        assert row["drr_over_nloglogn"] < 10.0
