"""E8 -- Theorems 11 & 13: Local-DRR on sparse graphs."""

from __future__ import annotations

from conftest import emit

from repro.harness import run_local_drr_statistics


def test_local_drr_height_and_tree_count(benchmark, full_sweep):
    ns = (256, 1024, 4096) if full_sweep else (256, 1024)
    families = ("ring", "grid", "regular4", "hypercube", "erdos-renyi")
    result = benchmark.pedantic(
        run_local_drr_statistics,
        kwargs=dict(ns=ns, families=families, repetitions=3, seed=6),
        iterations=1,
        rounds=1,
    )
    emit(result)
    for row in result.rows:
        # Theorem 11: tree height is O(log n) on every family.
        assert row["height_over_logn"] < 4.0
        # Theorem 13: #trees concentrates around sum 1/(d_i + 1).
        assert 0.5 < row["trees_over_predicted"] < 1.8
