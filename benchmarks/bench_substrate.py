"""Micro-benchmarks of the substrate itself (engine, DRR fast path, push-sum).

These are not paper experiments; they track the wall-clock cost of the
building blocks so performance regressions in the simulator show up in the
benchmark history (the usual pytest-benchmark use case).
"""

from __future__ import annotations

import numpy as np

from repro.baselines import push_sum
from repro.core import run_drr, run_drr_engine
from repro.harness import make_values


def test_bench_drr_fast_path(benchmark):
    benchmark(run_drr, 4096, rng=1)


def test_bench_drr_engine_path(benchmark):
    benchmark(run_drr_engine, 512, rng=1)


def test_bench_push_sum(benchmark):
    values = make_values("uniform", 4096, np.random.default_rng(0))
    benchmark(push_sum, values, rng=2)


def test_bench_full_average_pipeline(benchmark):
    from repro.core import drr_gossip_average

    values = make_values("normal", 2048, np.random.default_rng(0))
    result = benchmark(drr_gossip_average, values, rng=3)
    assert result.max_relative_error < 1e-2
