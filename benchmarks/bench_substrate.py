"""Benchmarks and CI smoke checks of the execution substrate.

Two uses:

* Under pytest-benchmark (``pytest benchmarks/bench_substrate.py``) it
  tracks the wall-clock cost of the substrate building blocks so
  performance regressions show up in the benchmark history.
* As a script (``python benchmarks/bench_substrate.py``) it runs the CI
  smoke comparison: the vectorized kernel must beat the message-level
  engine by at least ``--min-speedup`` (default 5x) on uniform gossip *and*
  on Local-DRR over a random regular graph at ``--n`` (default 10^5)
  nodes; a batch of Chord lookups must complete on both backends with
  identical owners; the ``sharded`` backend must reproduce the vectorized
  run *exactly* (rounds, messages incl. per-phase, estimates) at
  ``--sharded-n`` with ``--shards`` workers and finish inside
  ``--sharded-budget`` seconds; with ``--scale`` a full
  ``drr_gossip_average`` run at 10^6 nodes plus a vectorized Local-DRR
  over a 10^6-node sparse random graph must finish; and with
  ``--scale-large`` the 10^7-node ``drr_gossip_average`` tier runs:
  ``vectorized`` must complete within ``--large-budget`` seconds and
  ``sharded`` (P = ``--large-shards``, default 4) must be >= 3x faster —
  the ratio is *enforced* when the host has at least ``--large-shards``
  CPU cores and reported otherwise (a single-core runner cannot exhibit a
  multiprocessing speedup, and pretending it failed would only teach
  people to delete the check).

  The compiled tiers follow the same honesty rule: ``--compiled-only``
  (the ``bench-compiled`` CI job) asserts bit-equivalence at
  ``--compiled-n`` and requires the jitted probe exchange to beat the
  vectorized one by ``--compiled-min-ratio`` (default 2x) — enforced only
  under real numba, reported in python-fallback mode.  ``--scale-xl``
  runs ``drr_gossip_average`` at 10^8 nodes on the compiled backend
  inside ``--xl-budget`` seconds.  ``--sharded-lossy`` proves the lossy
  Phase III relay runs fully pooled (zero ``sharded.inline.*`` telemetry
  counters) while matching the vectorized run bit-for-bit.

  The telemetry overhead gate (``smoke_telemetry_overhead``) patches the
  instrumented substrate primitives back to their ``__wrapped__``
  originals, times the hook-free hot path against the shipped path with
  telemetry disabled, and fails when the disabled residue exceeds
  ``--max-telemetry-overhead`` percent (default 2); the enabled cost is
  measured and reported, and an enabled run must reproduce the disabled
  run bit-for-bit.

  Every measured run appends a machine-readable row (protocol, n,
  backend, shards, wall time, git SHA) to ``BENCH_substrate.json`` — the
  persisted perf trajectory that ``drr-gossip results --bench`` prints —
  unless ``--no-json`` is given.  Exit status is non-zero when any
  enforced bar is missed.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

from repro.baselines import push_sum
from repro.core import DRRGossipConfig, drr_gossip_average, run_drr, run_local_drr
from repro.harness import make_values
from repro.harness.benchlog import DEFAULT_BENCH_FILE, append_bench_rows
from repro.substrate import run_chord_lookups, shutdown_pools
from repro.substrate import sharded as sharded_backend
from repro.topology import ChordNetwork, random_regular_graph

#: rows accumulated by the smoke checks, flushed to BENCH_substrate.json
BENCH_ROWS: list[dict] = []


def record(bench: str, *, protocol: str, n: int, backend: str, wall_s: float,
           shards: int | None = None, messages: int | None = None,
           rounds: int | None = None) -> None:
    BENCH_ROWS.append(
        {
            "bench": bench,
            "protocol": protocol,
            "n": int(n),
            "backend": backend,
            "shards": shards,
            "wall_s": float(wall_s),
            "messages": messages,
            "rounds": rounds,
        }
    )


# --------------------------------------------------------------------------- #
# pytest-benchmark micro-benchmarks
# --------------------------------------------------------------------------- #
def test_bench_drr_vectorized(benchmark):
    benchmark(run_drr, 4096, rng=1)


def test_bench_drr_engine(benchmark):
    benchmark(run_drr, 512, rng=1, backend="engine")


def test_bench_push_sum_vectorized(benchmark):
    values = make_values("uniform", 4096, np.random.default_rng(0))
    benchmark(push_sum, values, rng=2)


def test_bench_push_sum_engine(benchmark):
    values = make_values("uniform", 1024, np.random.default_rng(0))
    benchmark(push_sum, values, rng=2, backend="engine")


def test_bench_full_average_pipeline(benchmark):
    values = make_values("normal", 2048, np.random.default_rng(0))
    result = benchmark(drr_gossip_average, values, rng=3)
    assert result.max_relative_error < 1e-2


def test_bench_local_drr_vectorized(benchmark):
    topo = random_regular_graph(4096, 4, np.random.default_rng(0))
    benchmark(run_local_drr, topo, rng=1)


def test_bench_chord_lookup_batch(benchmark):
    rng = np.random.default_rng(0)
    chord = ChordNetwork(4096, rng)
    sources = rng.integers(0, 4096, size=4096)
    targets = rng.integers(0, chord.ring_size, size=4096)
    benchmark(run_chord_lookups, chord, sources, targets, rng=1)


def test_bench_occurrence_index(benchmark):
    # Relay-shaped workload: a forwarder batch with balls-in-bins duplicate
    # depth (the case the single-pass peeling rewrite targets; the old
    # impl paid a stable argsort here every lossy gossip round).
    from repro.substrate import occurrence_index

    rng = np.random.default_rng(0)
    keys = rng.integers(0, 1 << 16, size=1 << 17)
    ranks = benchmark(occurrence_index, keys)
    assert int(ranks.max()) >= 1


# --------------------------------------------------------------------------- #
# CI smoke mode
# --------------------------------------------------------------------------- #
def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def smoke_speedup(n: int, rounds: int, min_speedup: float) -> bool:
    """Vectorized vs engine on uniform gossip (push-sum), same seed and rounds."""
    values = np.random.default_rng(0).uniform(0.0, 100.0, size=n)
    vectorized_s = _time(lambda: push_sum(values, rng=1, rounds=rounds))
    engine_s = _time(lambda: push_sum(values, rng=1, rounds=rounds, backend="engine"))
    record("uniform-gossip-speedup", protocol="push-sum", n=n, backend="vectorized", wall_s=vectorized_s)
    record("uniform-gossip-speedup", protocol="push-sum", n=n, backend="engine", wall_s=engine_s)
    speedup = engine_s / max(vectorized_s, 1e-9)
    print(
        f"uniform gossip, n={n}, rounds={rounds}: "
        f"vectorized {vectorized_s:.3f}s, engine {engine_s:.3f}s -> {speedup:.1f}x"
    )
    if speedup < min_speedup:
        print(f"FAIL: speedup {speedup:.1f}x below the required {min_speedup:g}x")
        return False
    print(f"OK: vectorized backend wins by >= {min_speedup:g}x")
    return True


def smoke_local_drr_speedup(n: int, min_speedup: float) -> bool:
    """Vectorized vs engine Local-DRR on a random 4-regular graph."""
    topo = random_regular_graph(n, 4, np.random.default_rng(0))
    vectorized_s = _time(lambda: run_local_drr(topo, rng=1))
    engine_s = _time(lambda: run_local_drr(topo, rng=1, backend="engine"))
    record("local-drr-speedup", protocol="local-drr", n=n, backend="vectorized", wall_s=vectorized_s)
    record("local-drr-speedup", protocol="local-drr", n=n, backend="engine", wall_s=engine_s)
    speedup = engine_s / max(vectorized_s, 1e-9)
    print(
        f"local-drr, n={n} (random 4-regular): "
        f"vectorized {vectorized_s:.3f}s, engine {engine_s:.3f}s -> {speedup:.1f}x"
    )
    if speedup < min_speedup:
        print(f"FAIL: local-drr speedup {speedup:.1f}x below the required {min_speedup:g}x")
        return False
    print(f"OK: vectorized local-drr wins by >= {min_speedup:g}x")
    return True


def smoke_chord_batch(n: int) -> bool:
    """A batch of n Chord lookups completes, identically on both backends."""
    rng = np.random.default_rng(0)
    chord = ChordNetwork(n, rng)
    sources = rng.integers(0, n, size=n)
    targets = rng.integers(0, chord.ring_size, size=n)
    fast = run_chord_lookups(chord, sources, targets, rng=1, backend="vectorized")
    engine = run_chord_lookups(chord, sources, targets, rng=1, backend="engine")
    print(
        f"chord lookup batch, n={n}: {fast.rounds} rounds, "
        f"{fast.messages} messages, completion={fast.completion_fraction:.3f}"
    )
    if fast.completion_fraction != 1.0:
        print("FAIL: chord lookup batch did not complete on a reliable network")
        return False
    if not (np.array_equal(fast.owners, engine.owners) and fast.rounds == engine.rounds):
        print("FAIL: chord lookup backends disagree")
        return False
    # Reply batching (count_reply) must ride the same cursor arrays: one
    # extra message per delivered route, one extra round, no per-route loop.
    plain_s = _time(lambda: run_chord_lookups(chord, sources, targets, rng=1))
    reply_start = time.perf_counter()
    replied = run_chord_lookups(chord, sources, targets, rng=1, count_reply=True)
    reply_s = time.perf_counter() - reply_start
    if replied.messages != fast.messages + int(replied.delivered.sum()):
        print("FAIL: count_reply accounting diverged from the hops+1 cost model")
        return False
    if replied.rounds != fast.rounds + 1:
        print("FAIL: reply batching should add exactly one trailing round")
        return False
    if reply_s > 2.0 * plain_s + 0.5:
        print(
            f"FAIL: count_reply batch took {reply_s:.3f}s vs {plain_s:.3f}s plain "
            "(reply batching regressed into per-route work)"
        )
        return False
    print(
        f"OK: chord lookup batch completes identically on both backends "
        f"(replies: +{int(replied.delivered.sum())} msgs, {reply_s:.3f}s vs {plain_s:.3f}s plain)"
    )
    return True


def smoke_sharded(n: int, shards: int, budget_s: float = 60.0) -> bool:
    """The sharded backend reproduces the vectorized run exactly, at speed.

    Runs ``drr_gossip_average`` at ``n`` on both backends (the sharded one
    on a real worker pool: ``min_batch=0`` forces every batch through the
    shards) and asserts identical rounds, total/per-phase message counts,
    and estimates to 1e-12 — plus completion within ``budget_s``.
    """
    values = np.random.default_rng(0).uniform(0.0, 100.0, size=n)
    start = time.perf_counter()
    reference = drr_gossip_average(values, rng=1, config=DRRGossipConfig(backend="vectorized"))
    vectorized_s = time.perf_counter() - start
    sharded_backend.configure(shards=shards, min_batch=0)
    try:
        start = time.perf_counter()
        result = drr_gossip_average(values, rng=1, config=DRRGossipConfig(backend="sharded"))
        sharded_s = time.perf_counter() - start
    finally:
        sharded_backend.configure(min_batch=sharded_backend.DEFAULT_MIN_BATCH)
        shutdown_pools()
    record("sharded-smoke", protocol="drr-gossip-average", n=n, backend="vectorized",
           wall_s=vectorized_s, messages=reference.messages, rounds=reference.rounds)
    record("sharded-smoke", protocol="drr-gossip-average", n=n, backend="sharded",
           shards=shards, wall_s=sharded_s, messages=result.messages, rounds=result.rounds)
    print(
        f"sharded smoke, n={n}, P={shards}: vectorized {vectorized_s:.2f}s, "
        f"sharded {sharded_s:.2f}s"
    )
    if result.rounds != reference.rounds or result.messages != reference.messages:
        print("FAIL: sharded backend diverged from vectorized (rounds/messages)")
        return False
    if result.metrics.messages_by_phase() != reference.metrics.messages_by_phase():
        print("FAIL: sharded backend diverged from vectorized (per-phase messages)")
        return False
    if not np.allclose(result.estimates, reference.estimates, rtol=1e-12, equal_nan=True):
        print("FAIL: sharded backend estimates diverged beyond 1e-12")
        return False
    if sharded_s > budget_s:
        print(f"FAIL: sharded run took {sharded_s:.1f}s (> {budget_s:g}s budget)")
        return False
    print(f"OK: sharded backend is equivalent and completed in {sharded_s:.1f}s (< {budget_s:g}s)")
    return True


def smoke_telemetry_overhead(
    n: int, max_overhead_pct: float = 2.0, repeats: int = 5
) -> bool:
    """Disabled telemetry must cost < ``max_overhead_pct`` of the hot path.

    The instrumented substrate primitives keep their undecorated originals
    reachable via ``__wrapped__``; patching them back in gives an honest
    hook-free baseline (the PR 5 hot path) in the same process.  The gate
    compares that baseline against the shipped path with telemetry *off*
    (best-of-``repeats`` each, plus a small absolute slop so sub-20 ms
    timer jitter cannot flake CI); the *enabled* cost is measured and
    reported, and the enabled run must reproduce the disabled run exactly.
    """
    from repro.observability import Telemetry, use_telemetry
    from repro.substrate import delivery
    from repro.substrate.kernel import VectorizedKernel

    values = np.random.default_rng(0).uniform(0.0, 100.0, size=n)

    def run():
        return drr_gossip_average(values, rng=1, config=DRRGossipConfig(backend="vectorized"))

    def best_of(fn):
        return min(_time(fn) for _ in range(repeats))

    run()  # warm-up outside every timed region

    # Hook-free baseline: unwrap the instrumented primitives on both the
    # kernel (bound as staticmethods at class creation) and the delivery
    # module (probe_exchange/relay call module-level deliver_batch).
    primitives = ("deliver_batch", "probe_exchange", "relay_to_roots")
    kernel_names = {"deliver_batch": "deliver"}
    saved_module = {name: getattr(delivery, name) for name in primitives}
    saved_kernel = {
        kernel_names.get(name, name): getattr(VectorizedKernel, kernel_names.get(name, name))
        for name in primitives
    }
    try:
        for name in primitives:
            setattr(delivery, name, saved_module[name].__wrapped__)
            kernel_name = kernel_names.get(name, name)
            setattr(VectorizedKernel, kernel_name, staticmethod(saved_module[name].__wrapped__))
        baseline_s = best_of(run)
    finally:
        for name in primitives:
            setattr(delivery, name, saved_module[name])
        for kernel_name, fn in saved_kernel.items():
            setattr(VectorizedKernel, kernel_name, staticmethod(fn))

    disabled_s = best_of(run)
    reference = run()

    tel = Telemetry()
    with use_telemetry(tel):
        start = time.perf_counter()
        enabled_result = run()
        enabled_s = time.perf_counter() - start
    tel.finish()

    record("telemetry-overhead", protocol="drr-gossip-average", n=n,
           backend="vectorized", wall_s=disabled_s)
    record("telemetry-overhead", protocol="drr-gossip-average", n=n,
           backend="vectorized+telemetry", wall_s=enabled_s)

    overhead_pct = 100.0 * (disabled_s - baseline_s) / max(baseline_s, 1e-9)
    enabled_pct = 100.0 * (enabled_s - baseline_s) / max(baseline_s, 1e-9)
    print(
        f"telemetry overhead, n={n}: hook-free {baseline_s * 1e3:.1f} ms, "
        f"disabled {disabled_s * 1e3:.1f} ms ({overhead_pct:+.2f}%), "
        f"enabled {enabled_s * 1e3:.1f} ms ({enabled_pct:+.2f}%, reported only)"
    )
    ok = True
    if disabled_s > baseline_s * (1.0 + max_overhead_pct / 100.0) + 0.02:
        print(
            f"FAIL: disabled telemetry costs {overhead_pct:.2f}% "
            f"(bar: < {max_overhead_pct:g}% of the hook-free hot path)"
        )
        ok = False
    if (
        enabled_result.messages != reference.messages
        or enabled_result.rounds != reference.rounds
        or not np.array_equal(enabled_result.estimates, reference.estimates)
    ):
        print("FAIL: enabled telemetry changed the run outcome")
        ok = False
    doc = tel.as_dict()
    if not doc.get("phases") or not doc.get("spans"):
        print("FAIL: enabled telemetry recorded no phases/spans")
        ok = False
    if ok:
        print(f"OK: disabled telemetry is free (< {max_overhead_pct:g}%) and enabled is neutral")
    return ok


def smoke_local_drr_scale(n: int, budget_s: float = 9.0) -> bool:
    """Vectorized Local-DRR on an n-node sparse graph in single-digit seconds."""
    topo = random_regular_graph(n, 4, np.random.default_rng(0))
    start = time.perf_counter()
    result = run_local_drr(topo, rng=1)
    elapsed = time.perf_counter() - start
    record("local-drr-scale", protocol="local-drr", n=n, backend="vectorized",
           wall_s=elapsed, messages=result.metrics.total_messages)
    trees = result.forest.root_count
    expected = topo.expected_local_drr_trees()
    print(
        f"local-drr, n={n} (random 4-regular): {elapsed:.2f}s, "
        f"trees={trees} (theory {expected:.0f}), messages={result.metrics.total_messages}"
    )
    if elapsed > budget_s:
        print(f"FAIL: local-drr at n={n} took {elapsed:.1f}s (> {budget_s:g}s)")
        return False
    if not (0.8 * expected < trees < 1.2 * expected):
        print("FAIL: tree count far from the Theorem 13 expectation")
        return False
    print("OK: vectorized local-drr handles sparse graphs at scale")
    return True


def smoke_scale(n: int) -> bool:
    """A full DRR-gossip-average run must complete at scale, vectorized."""
    values = np.random.default_rng(0).uniform(0.0, 100.0, size=n)
    start = time.perf_counter()
    result = drr_gossip_average(values, rng=1, config=DRRGossipConfig(backend="vectorized"))
    elapsed = time.perf_counter() - start
    record("pipeline-scale", protocol="drr-gossip-average", n=n, backend="vectorized",
           wall_s=elapsed, messages=result.messages, rounds=result.rounds)
    print(
        f"drr_gossip_average, n={n}: {elapsed:.1f}s, rounds={result.rounds}, "
        f"messages={result.messages}, max_rel_error={result.max_relative_error:.2e}, "
        f"coverage={result.coverage:.3f}"
    )
    if not (result.coverage == 1.0 and result.max_relative_error < 1e-3):
        print("FAIL: scale run did not converge")
        return False
    print("OK: full pipeline completes at scale under the vectorized backend")
    return True


def smoke_scale_large(n: int, shards: int, vectorized_budget_s: float, min_ratio: float) -> bool:
    """The n=10^7 tier: vectorized completes; sharded (P shards) is >= 3x.

    The speedup ratio is enforced only when the host has at least
    ``shards`` CPU cores — a single-core runner cannot exhibit a
    multiprocessing speedup, so there the ratio is measured and reported
    but does not fail the run (equivalence is still asserted).
    """
    values = np.random.default_rng(0).uniform(0.0, 100.0, size=n)
    start = time.perf_counter()
    reference = drr_gossip_average(values, rng=1, config=DRRGossipConfig(backend="vectorized"))
    vectorized_s = time.perf_counter() - start
    record("pipeline-scale-large", protocol="drr-gossip-average", n=n, backend="vectorized",
           wall_s=vectorized_s, messages=reference.messages, rounds=reference.rounds)
    print(
        f"drr_gossip_average, n={n}: vectorized {vectorized_s:.1f}s, "
        f"rounds={reference.rounds}, messages={reference.messages}, "
        f"max_rel_error={reference.max_relative_error:.2e}"
    )
    ok = True
    if vectorized_s > vectorized_budget_s:
        print(f"FAIL: vectorized n={n} took {vectorized_s:.1f}s (> {vectorized_budget_s:g}s)")
        ok = False
    if not (reference.coverage == 1.0 and reference.max_relative_error < 1e-3):
        print("FAIL: large-scale vectorized run did not converge")
        ok = False

    sharded_backend.configure(shards=shards)
    try:
        start = time.perf_counter()
        result = drr_gossip_average(values, rng=1, config=DRRGossipConfig(backend="sharded"))
        sharded_s = time.perf_counter() - start
    finally:
        shutdown_pools()
    record("pipeline-scale-large", protocol="drr-gossip-average", n=n, backend="sharded",
           shards=shards, wall_s=sharded_s, messages=result.messages, rounds=result.rounds)
    ratio = vectorized_s / max(sharded_s, 1e-9)
    print(f"drr_gossip_average, n={n}: sharded(P={shards}) {sharded_s:.1f}s -> {ratio:.2f}x vectorized")
    if result.messages != reference.messages or result.rounds != reference.rounds:
        print("FAIL: sharded large-scale run diverged from vectorized (rounds/messages)")
        ok = False
    if not np.allclose(result.estimates, reference.estimates, rtol=1e-12, equal_nan=True):
        print("FAIL: sharded large-scale estimates diverged beyond 1e-12")
        ok = False
    cores = os.cpu_count() or 1
    if cores >= shards:
        if ratio < min_ratio:
            print(f"FAIL: sharded speedup {ratio:.2f}x below the required {min_ratio:g}x")
            ok = False
        else:
            print(f"OK: sharded backend wins by >= {min_ratio:g}x at n={n}")
    else:
        print(
            f"NOTE: host has {cores} CPU core(s) < P={shards}; the {min_ratio:g}x "
            "ratio is reported, not enforced (no parallel hardware to win on)"
        )
    return ok


def smoke_sharded_lossy(n: int, shards: int) -> bool:
    """Lossy Phase III relays run *sharded*: zero ``sharded.inline.*`` counters.

    PR 5 shipped the lossy relay as an inline fallback (cross-shard
    occurrence nonces were unsolved); the cross-shard rank merge removed
    it.  This smoke proves the removal end-to-end: a lossy run with
    ``min_batch=0`` must push every relay through the pool (telemetry
    counts any inline detour) while staying bit-equivalent to vectorized.
    """
    from repro.observability import Telemetry, use_telemetry
    from repro.simulator.failures import FailureModel

    values = np.random.default_rng(0).uniform(0.0, 100.0, size=n)
    lossy = FailureModel(loss_probability=0.05)
    reference = drr_gossip_average(
        values, rng=1, config=DRRGossipConfig(failure_model=lossy, backend="vectorized")
    )
    sharded_backend.configure(shards=shards, min_batch=0)
    tel = Telemetry()
    try:
        start = time.perf_counter()
        with use_telemetry(tel):
            result = drr_gossip_average(
                values, rng=1, config=DRRGossipConfig(failure_model=lossy, backend="sharded")
            )
        sharded_s = time.perf_counter() - start
    finally:
        sharded_backend.configure(min_batch=sharded_backend.DEFAULT_MIN_BATCH)
        shutdown_pools()
    tel.finish()
    doc = tel.as_dict()
    inline = sorted(
        name for name in doc.get("counters", {}) if name.startswith("sharded.inline.")
    )
    record("sharded-lossy-smoke", protocol="drr-gossip-average", n=n, backend="sharded",
           shards=shards, wall_s=sharded_s, messages=result.messages, rounds=result.rounds)
    print(
        f"sharded lossy smoke, n={n}, P={shards}, delta=0.05: {sharded_s:.2f}s, "
        f"rounds={result.rounds}, messages={result.messages}"
    )
    ok = True
    if inline:
        print(f"FAIL: lossy relays fell back inline (counters: {', '.join(inline)})")
        ok = False
    if result.messages != reference.messages or result.rounds != reference.rounds:
        print("FAIL: pooled lossy run diverged from vectorized (rounds/messages)")
        ok = False
    if result.metrics.messages_by_phase() != reference.metrics.messages_by_phase():
        print("FAIL: pooled lossy run diverged from vectorized (per-phase messages)")
        ok = False
    if not np.allclose(result.estimates, reference.estimates, rtol=1e-12, equal_nan=True):
        print("FAIL: pooled lossy estimates diverged beyond 1e-12")
        ok = False
    if ok:
        print("OK: lossy relays run fully pooled (no sharded.inline.* counters)")
    return ok


def smoke_churn_equivalence(n: int) -> bool:
    """A mid-run churn scenario is identical on every available backend.

    Runs push-sum and epoch-gossip-ave at ``n`` under loss + rate churn +
    a scheduled crash/join, across every backend the host registers
    (compiled joins automatically when numba is importable), and asserts
    the full equivalence contract: ``same_outcome`` (rounds, message
    counters, estimates) *and* identical degradation sections — which
    ``same_outcome`` deliberately excludes, so the bench compares them
    explicitly (as JSON, so NaN-valued entries still compare equal).
    """
    import json as _json

    from repro.api import RunSpec, run
    from repro.substrate import BACKENDS

    failures = {
        "loss_probability": 0.05,
        "churn_rate": 0.002,
        "join_rate": 0.001,
        "churn_schedule": [[3, [2, 7, 11], "crash"], [9, [2], "join"]],
    }
    ok = True
    try:
        for protocol, params in (
            ("push-sum", {"n": n, "workload": "uniform"}),
            ("epoch-gossip-ave", {"n": n, "workload": "uniform", "epochs": 3}),
        ):
            results = {}
            for backend in sorted(BACKENDS):
                spec = RunSpec(
                    protocol=protocol, params=params, seed=7,
                    backend=backend, failures=failures,
                )
                start = time.perf_counter()
                results[backend] = run(spec)
                elapsed = time.perf_counter() - start
                record("churn-equivalence", protocol=protocol, n=n, backend=backend,
                       wall_s=elapsed, messages=results[backend].messages,
                       rounds=results[backend].rounds)
            reference = results["vectorized"]
            print(
                f"churn equivalence, {protocol}, n={n}: " + ", ".join(
                    f"{b}={r.rounds}r/{r.messages}m" for b, r in sorted(results.items())
                )
            )
            degradation_ref = _json.dumps(reference.degradation, sort_keys=True)
            for backend, result in sorted(results.items()):
                if not result.same_outcome(reference):
                    print(f"FAIL: {protocol} on {backend} diverged from vectorized under churn")
                    ok = False
                if _json.dumps(result.degradation, sort_keys=True) != degradation_ref:
                    print(f"FAIL: {protocol} on {backend} degradation metrics diverged")
                    ok = False
            if reference.degradation is None:
                print(f"FAIL: {protocol} churn run carried no degradation section")
                ok = False
            elif not reference.degradation.get("messages_to_dead", 0):
                print(f"FAIL: {protocol} churn run charged no messages to dead recipients")
                ok = False
    finally:
        shutdown_pools()
    if ok:
        print(
            f"OK: churn scenario identical across {len(BACKENDS)} backend(s) "
            f"({', '.join(sorted(BACKENDS))})"
        )
    return ok


def smoke_churn_overhead(n: int, max_overhead_pct: float = 2.0, repeats: int = 5) -> bool:
    """A churn-off run must stay within ``max_overhead_pct`` of the hot path.

    Same honesty trick as the telemetry gate: the instrumented substrate
    primitives are patched back to their ``__wrapped__`` originals, giving
    the hook-free hot path (the bar every PR since 5 has been measured
    against) in the same process.  The shipped path — churn support
    compiled in but no churn configured — must cost < ``max_overhead_pct``
    over that baseline, and must reproduce its outcome bit-for-bit: specs
    without churn keys take the ``alive=None`` fast paths and never hash a
    single churn fate.
    """
    from repro.substrate import delivery
    from repro.substrate.kernel import VectorizedKernel

    values = np.random.default_rng(0).uniform(0.0, 100.0, size=n)

    def run_once():
        return drr_gossip_average(values, rng=1, config=DRRGossipConfig(backend="vectorized"))

    def best_of(fn):
        return min(_time(fn) for _ in range(repeats))

    run_once()  # warm-up outside every timed region

    primitives = ("deliver_batch", "probe_exchange", "relay_to_roots")
    kernel_names = {"deliver_batch": "deliver"}
    saved_module = {name: getattr(delivery, name) for name in primitives}
    saved_kernel = {
        kernel_names.get(name, name): getattr(VectorizedKernel, kernel_names.get(name, name))
        for name in primitives
    }
    try:
        for name in primitives:
            setattr(delivery, name, saved_module[name].__wrapped__)
            kernel_name = kernel_names.get(name, name)
            setattr(VectorizedKernel, kernel_name, staticmethod(saved_module[name].__wrapped__))
        baseline_s = best_of(run_once)
        baseline = run_once()
    finally:
        for name in primitives:
            setattr(delivery, name, saved_module[name])
        for kernel_name, fn in saved_kernel.items():
            setattr(VectorizedKernel, kernel_name, staticmethod(fn))

    shipped_s = best_of(run_once)
    shipped = run_once()

    record("churn-off-overhead", protocol="drr-gossip-average", n=n,
           backend="vectorized[hook-free]", wall_s=baseline_s)
    record("churn-off-overhead", protocol="drr-gossip-average", n=n,
           backend="vectorized", wall_s=shipped_s)
    overhead_pct = 100.0 * (shipped_s - baseline_s) / max(baseline_s, 1e-9)
    print(
        f"churn-off overhead, n={n}: hook-free {baseline_s * 1e3:.1f} ms, "
        f"shipped churn-off {shipped_s * 1e3:.1f} ms ({overhead_pct:+.2f}%)"
    )
    ok = True
    if shipped_s > baseline_s * (1.0 + max_overhead_pct / 100.0) + 0.02:
        print(
            f"FAIL: churn-off path costs {overhead_pct:.2f}% "
            f"(bar: < {max_overhead_pct:g}% of the hook-free hot path)"
        )
        ok = False
    if (
        shipped.messages != baseline.messages
        or shipped.rounds != baseline.rounds
        or not np.array_equal(shipped.estimates, baseline.estimates)
    ):
        print("FAIL: churn-off run diverged from the pre-churn hot path outcome")
        ok = False
    if ok:
        print(f"OK: churn-off path is free (< {max_overhead_pct:g}%) and bit-identical")
    return ok


def smoke_compiled(n: int, min_ratio: float) -> bool:
    """Compiled-backend gate: exact equivalence + a jitted probe-exchange win.

    Asserts a lossy+crash ``drr_gossip_average`` at ``n`` is bit-equivalent
    to vectorized, then times the fused probe exchange (the DRR hot
    primitive) on both kernels.  The >= ``min_ratio`` speedup is enforced
    only under real numba — in python-fallback mode (``REPRO_COMPILED_PYTHON``)
    the compiled kernel routes through the same NumPy loops, so the ratio
    is reported, not enforced (same honesty rule as the cores guard in the
    sharded tier).
    """
    from repro.simulator.failures import FailureModel, LossOracle
    from repro.simulator.metrics import MetricsCollector
    from repro.substrate import BACKENDS, NUMBA_AVAILABLE, VectorizedKernel
    from repro.substrate.compiled import NUMBA_REQUIREMENT

    kernel = BACKENDS.get("compiled")
    if kernel is None:
        print(f"FAIL: compiled backend is not registered ({NUMBA_REQUIREMENT})")
        return False
    mode = "numba" if NUMBA_AVAILABLE else "python-fallback"

    values = np.random.default_rng(0).uniform(0.0, 100.0, size=n)
    model = FailureModel(loss_probability=0.05, crash_fraction=0.02)
    reference = drr_gossip_average(
        values, rng=1, config=DRRGossipConfig(failure_model=model, backend="vectorized")
    )
    start = time.perf_counter()
    result = drr_gossip_average(
        values, rng=1, config=DRRGossipConfig(failure_model=model, backend="compiled")
    )
    compiled_s = time.perf_counter() - start
    record("compiled-smoke", protocol="drr-gossip-average", n=n,
           backend=f"compiled[{mode}]", wall_s=compiled_s,
           messages=result.messages, rounds=result.rounds)
    ok = True
    if result.messages != reference.messages or result.rounds != reference.rounds:
        print("FAIL: compiled backend diverged from vectorized (rounds/messages)")
        ok = False
    if result.metrics.messages_by_phase() != reference.metrics.messages_by_phase():
        print("FAIL: compiled backend diverged from vectorized (per-phase messages)")
        ok = False
    if not np.allclose(result.estimates, reference.estimates, rtol=1e-12, equal_nan=True):
        print("FAIL: compiled estimates diverged beyond 1e-12")
        ok = False
    print(f"compiled smoke ({mode}), n={n}: {compiled_s:.2f}s, equivalence "
          f"{'OK' if ok else 'FAILED'}")

    # probe-exchange micro-bench: one big lossy DRR probing round
    size = max(n, 1_000_000)
    rng = np.random.default_rng(1)
    senders = rng.integers(0, size, size=size)
    targets = rng.integers(0, size, size=size)
    ranks = rng.permutation(size)
    oracle = LossOracle(0.05, key=12345)

    def probe(fn):
        return fn(
            MetricsCollector(), oracle, targets,
            senders=senders, ranks=ranks, round_index=3, alive=None,
        )

    probe(kernel._inline_probe_exchange)  # numba compile / warm-up
    vec_s = min(_time(lambda: probe(VectorizedKernel.probe_exchange)) for _ in range(3))
    comp_s = min(_time(lambda: probe(kernel._inline_probe_exchange)) for _ in range(3))
    if not np.array_equal(
        probe(VectorizedKernel.probe_exchange), probe(kernel._inline_probe_exchange)
    ):
        print("FAIL: compiled probe exchange disagrees with vectorized")
        ok = False
    ratio = vec_s / max(comp_s, 1e-9)
    record("probe-exchange-micro", protocol="drr-probe", n=size,
           backend="vectorized", wall_s=vec_s)
    record("probe-exchange-micro", protocol="drr-probe", n=size,
           backend=f"compiled[{mode}]", wall_s=comp_s)
    print(
        f"probe-exchange micro, batch={size}: vectorized {vec_s * 1e3:.1f} ms, "
        f"compiled {comp_s * 1e3:.1f} ms -> {ratio:.2f}x"
    )
    if NUMBA_AVAILABLE:
        if ratio < min_ratio:
            print(f"FAIL: compiled probe exchange {ratio:.2f}x below the required {min_ratio:g}x")
            ok = False
        else:
            print(f"OK: compiled probe exchange wins by >= {min_ratio:g}x")
    else:
        print(
            f"NOTE: python-fallback mode; the {min_ratio:g}x ratio is reported, "
            "not enforced (no jitted loops to win with)"
        )
    return ok


def smoke_scale_xl(n: int, budget_s: float) -> bool:
    """The n=10^8 tier: ``drr_gossip_average`` on the compiled backend.

    Warmth matters at this size: a tiny run first pays numba's one-off
    compile cost (cached on disk afterwards) so the timed run measures the
    protocol, not the compiler.
    """
    from repro.substrate import BACKENDS, NUMBA_AVAILABLE
    from repro.substrate.compiled import NUMBA_REQUIREMENT

    if "compiled" not in BACKENDS:
        print(f"FAIL: compiled backend is not registered ({NUMBA_REQUIREMENT})")
        return False
    mode = "numba" if NUMBA_AVAILABLE else "python-fallback"
    warm = np.random.default_rng(0).uniform(0.0, 100.0, size=10_000)
    drr_gossip_average(warm, rng=1, config=DRRGossipConfig(backend="compiled"))

    values = np.random.default_rng(0).uniform(0.0, 100.0, size=n)
    start = time.perf_counter()
    result = drr_gossip_average(values, rng=1, config=DRRGossipConfig(backend="compiled"))
    elapsed = time.perf_counter() - start
    record("pipeline-scale-xl", protocol="drr-gossip-average", n=n,
           backend=f"compiled[{mode}]", wall_s=elapsed,
           messages=result.messages, rounds=result.rounds)
    print(
        f"drr_gossip_average, n={n}: compiled ({mode}) {elapsed:.1f}s, "
        f"rounds={result.rounds}, messages={result.messages}, "
        f"max_rel_error={result.max_relative_error:.2e}"
    )
    ok = True
    if not (result.coverage == 1.0 and result.max_relative_error < 1e-3):
        print("FAIL: xl-scale compiled run did not converge")
        ok = False
    if elapsed > budget_s:
        print(f"FAIL: compiled n={n} took {elapsed:.1f}s (> {budget_s:g}s budget)")
        ok = False
    if ok:
        print(f"OK: compiled backend completes n={n} in {elapsed:.1f}s (< {budget_s:g}s)")
    return ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=100_000, help="nodes for the speedup comparison")
    parser.add_argument("--rounds", type=int, default=5, help="gossip rounds for the comparison")
    parser.add_argument("--min-speedup", type=float, default=5.0)
    parser.add_argument(
        "--scale", action="store_true",
        help="also run the 10^6-node drr_gossip_average completion check",
    )
    parser.add_argument("--scale-n", type=int, default=1_000_000)
    parser.add_argument(
        "--scale-large", action="store_true",
        help="also run the 10^7-node tier: vectorized completion + sharded >= 3x "
        "(ratio enforced only on hosts with enough cores)",
    )
    parser.add_argument("--scale-large-n", type=int, default=10_000_000)
    parser.add_argument("--large-shards", type=int, default=4, help="P for the 10^7 sharded tier")
    parser.add_argument(
        "--large-budget", type=float, default=540.0,
        help="vectorized wall-clock budget (s) for the 10^7 run (single-digit minutes)",
    )
    parser.add_argument("--large-min-ratio", type=float, default=3.0)
    parser.add_argument(
        "--scale-xl", action="store_true",
        help="also run the 10^8-node compiled tier (single-digit-minutes budget; "
        "requires the compiled backend and ~16 GB of RAM)",
    )
    parser.add_argument("--scale-xl-n", type=int, default=100_000_000)
    parser.add_argument(
        "--xl-budget", type=float, default=540.0,
        help="compiled wall-clock budget (s) for the 10^8 run (single-digit minutes)",
    )
    parser.add_argument(
        "--compiled-only", action="store_true",
        help="run only the compiled-backend gate: equivalence smoke + jitted "
        "probe-exchange speedup (the dedicated CI job)",
    )
    parser.add_argument(
        "--compiled-n", type=int, default=100_000,
        help="nodes for the compiled equivalence smoke",
    )
    parser.add_argument(
        "--compiled-min-ratio", type=float, default=2.0,
        help="required vectorized->compiled speedup on the probe-exchange micro-bench",
    )
    parser.add_argument(
        "--sharded-lossy", action="store_true",
        help="also run the lossy pooled-relay smoke (zero sharded.inline.* counters "
        "at --sharded-lossy-n with --shards workers)",
    )
    parser.add_argument("--sharded-lossy-n", type=int, default=1_000_000)
    parser.add_argument("--chord-n", type=int, default=4096, help="nodes/lookups for the Chord batch check")
    parser.add_argument("--sharded-n", type=int, default=100_000, help="nodes for the sharded equivalence smoke")
    parser.add_argument("--shards", type=int, default=2, help="worker processes for the sharded smoke")
    parser.add_argument("--sharded-budget", type=float, default=60.0)
    parser.add_argument("--skip-sharded", action="store_true", help="skip the sharded smoke")
    parser.add_argument(
        "--telemetry-n", type=int, default=None,
        help="nodes for the disabled-telemetry overhead gate (default: --n)",
    )
    parser.add_argument(
        "--max-telemetry-overhead", type=float, default=2.0,
        help="maximum disabled-telemetry overhead over the hook-free hot path, in percent",
    )
    parser.add_argument(
        "--skip-telemetry", action="store_true", help="skip the telemetry overhead gate",
    )
    parser.add_argument(
        "--sharded-only", action="store_true",
        help="run only the sharded equivalence smoke (the dedicated CI job)",
    )
    parser.add_argument(
        "--churn-only", action="store_true",
        help="run only the churn equivalence + churn-off overhead gates (the churn-smoke CI job)",
    )
    parser.add_argument(
        "--churn-n", type=int, default=10_000,
        help="nodes for the cross-backend churn equivalence smoke",
    )
    parser.add_argument(
        "--churn-overhead-n", type=int, default=100_000,
        help="nodes for the churn-off overhead gate",
    )
    parser.add_argument(
        "--max-churn-overhead", type=float, default=2.0,
        help="maximum churn-off overhead over the hook-free hot path, in percent",
    )
    parser.add_argument(
        "--json", type=str, default=DEFAULT_BENCH_FILE, metavar="PATH",
        help="append measured rows to this trajectory file",
    )
    parser.add_argument("--no-json", action="store_true", help="do not write the trajectory file")
    args = parser.parse_args(argv)

    if args.sharded_only and args.skip_sharded:
        parser.error("--sharded-only and --skip-sharded contradict each other")
    if args.sharded_only:
        ok = smoke_sharded(args.sharded_n, args.shards, args.sharded_budget)
        if args.sharded_lossy:
            ok = smoke_sharded_lossy(args.sharded_lossy_n, args.shards) and ok
        if args.scale_large:
            ok = smoke_scale_large(
                args.scale_large_n, args.large_shards, args.large_budget, args.large_min_ratio
            ) and ok
        if not args.no_json and BENCH_ROWS:
            path = append_bench_rows(BENCH_ROWS, args.json)
            print(f"recorded {len(BENCH_ROWS)} benchmark row(s) in {path}")
        return 0 if ok else 1
    if args.churn_only:
        ok = smoke_churn_equivalence(args.churn_n)
        ok = smoke_churn_overhead(args.churn_overhead_n, args.max_churn_overhead) and ok
        if not args.no_json and BENCH_ROWS:
            path = append_bench_rows(BENCH_ROWS, args.json)
            print(f"recorded {len(BENCH_ROWS)} benchmark row(s) in {path}")
        return 0 if ok else 1
    if args.compiled_only:
        ok = smoke_compiled(args.compiled_n, args.compiled_min_ratio)
        if args.scale_xl:
            ok = smoke_scale_xl(args.scale_xl_n, args.xl_budget) and ok
        if not args.no_json and BENCH_ROWS:
            path = append_bench_rows(BENCH_ROWS, args.json)
            print(f"recorded {len(BENCH_ROWS)} benchmark row(s) in {path}")
        return 0 if ok else 1
    ok = smoke_speedup(args.n, args.rounds, args.min_speedup)
    ok = smoke_local_drr_speedup(args.n, args.min_speedup) and ok
    ok = smoke_chord_batch(args.chord_n) and ok
    if not args.skip_telemetry:
        ok = smoke_telemetry_overhead(
            args.telemetry_n if args.telemetry_n is not None else args.n,
            args.max_telemetry_overhead,
        ) and ok
    if not args.skip_sharded:
        ok = smoke_sharded(args.sharded_n, args.shards, args.sharded_budget) and ok
    if args.sharded_lossy:
        ok = smoke_sharded_lossy(args.sharded_lossy_n, args.shards) and ok
    from repro.substrate import BACKENDS as _backends

    if "compiled" in _backends:
        ok = smoke_compiled(args.compiled_n, args.compiled_min_ratio) and ok
    if args.scale:
        ok = smoke_scale(args.scale_n) and ok
        ok = smoke_local_drr_scale(args.scale_n) and ok
    if args.scale_large:
        ok = smoke_scale_large(
            args.scale_large_n, args.large_shards, args.large_budget, args.large_min_ratio
        ) and ok
    if args.scale_xl:
        ok = smoke_scale_xl(args.scale_xl_n, args.xl_budget) and ok
    if not args.no_json and BENCH_ROWS:
        path = append_bench_rows(BENCH_ROWS, args.json)
        print(f"recorded {len(BENCH_ROWS)} benchmark row(s) in {path}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
