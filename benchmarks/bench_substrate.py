"""Benchmarks and CI smoke checks of the execution substrate.

Two uses:

* Under pytest-benchmark (``pytest benchmarks/bench_substrate.py``) it
  tracks the wall-clock cost of the substrate building blocks so
  performance regressions show up in the benchmark history.
* As a script (``python benchmarks/bench_substrate.py``) it runs the CI
  smoke comparison: the vectorized kernel must beat the message-level
  engine by at least ``--min-speedup`` (default 5x) on uniform gossip at
  ``--n`` (default 10^5) nodes, and with ``--scale`` a full
  ``drr_gossip_average`` run must complete at 10^6 nodes under the
  vectorized backend.  Exit status is non-zero when either bar is missed.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.baselines import push_sum
from repro.core import DRRGossipConfig, drr_gossip_average, run_drr
from repro.harness import make_values


# --------------------------------------------------------------------------- #
# pytest-benchmark micro-benchmarks
# --------------------------------------------------------------------------- #
def test_bench_drr_vectorized(benchmark):
    benchmark(run_drr, 4096, rng=1)


def test_bench_drr_engine(benchmark):
    benchmark(run_drr, 512, rng=1, backend="engine")


def test_bench_push_sum_vectorized(benchmark):
    values = make_values("uniform", 4096, np.random.default_rng(0))
    benchmark(push_sum, values, rng=2)


def test_bench_push_sum_engine(benchmark):
    values = make_values("uniform", 1024, np.random.default_rng(0))
    benchmark(push_sum, values, rng=2, backend="engine")


def test_bench_full_average_pipeline(benchmark):
    values = make_values("normal", 2048, np.random.default_rng(0))
    result = benchmark(drr_gossip_average, values, rng=3)
    assert result.max_relative_error < 1e-2


# --------------------------------------------------------------------------- #
# CI smoke mode
# --------------------------------------------------------------------------- #
def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def smoke_speedup(n: int, rounds: int, min_speedup: float) -> bool:
    """Vectorized vs engine on uniform gossip (push-sum), same seed and rounds."""
    values = np.random.default_rng(0).uniform(0.0, 100.0, size=n)
    vectorized_s = _time(lambda: push_sum(values, rng=1, rounds=rounds))
    engine_s = _time(lambda: push_sum(values, rng=1, rounds=rounds, backend="engine"))
    speedup = engine_s / max(vectorized_s, 1e-9)
    print(
        f"uniform gossip, n={n}, rounds={rounds}: "
        f"vectorized {vectorized_s:.3f}s, engine {engine_s:.3f}s -> {speedup:.1f}x"
    )
    if speedup < min_speedup:
        print(f"FAIL: speedup {speedup:.1f}x below the required {min_speedup:g}x")
        return False
    print(f"OK: vectorized backend wins by >= {min_speedup:g}x")
    return True


def smoke_scale(n: int) -> bool:
    """A full DRR-gossip-average run must complete at scale, vectorized."""
    values = np.random.default_rng(0).uniform(0.0, 100.0, size=n)
    start = time.perf_counter()
    result = drr_gossip_average(values, rng=1, config=DRRGossipConfig(backend="vectorized"))
    elapsed = time.perf_counter() - start
    print(
        f"drr_gossip_average, n={n}: {elapsed:.1f}s, rounds={result.rounds}, "
        f"messages={result.messages}, max_rel_error={result.max_relative_error:.2e}, "
        f"coverage={result.coverage:.3f}"
    )
    if not (result.coverage == 1.0 and result.max_relative_error < 1e-3):
        print("FAIL: scale run did not converge")
        return False
    print("OK: full pipeline completes at scale under the vectorized backend")
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=100_000, help="nodes for the speedup comparison")
    parser.add_argument("--rounds", type=int, default=5, help="gossip rounds for the comparison")
    parser.add_argument("--min-speedup", type=float, default=5.0)
    parser.add_argument(
        "--scale", action="store_true",
        help="also run the 10^6-node drr_gossip_average completion check",
    )
    parser.add_argument("--scale-n", type=int, default=1_000_000)
    args = parser.parse_args(argv)

    ok = smoke_speedup(args.n, args.rounds, args.min_speedup)
    if args.scale:
        ok = smoke_scale(args.scale_n) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
