"""Benchmarks and CI smoke checks of the execution substrate.

Two uses:

* Under pytest-benchmark (``pytest benchmarks/bench_substrate.py``) it
  tracks the wall-clock cost of the substrate building blocks so
  performance regressions show up in the benchmark history.
* As a script (``python benchmarks/bench_substrate.py``) it runs the CI
  smoke comparison: the vectorized kernel must beat the message-level
  engine by at least ``--min-speedup`` (default 5x) on uniform gossip *and*
  on Local-DRR over a random regular graph at ``--n`` (default 10^5)
  nodes; a batch of Chord lookups must complete on both backends with
  identical owners; and with ``--scale`` a full ``drr_gossip_average``
  run at 10^6 nodes plus a vectorized Local-DRR over a 10^6-node sparse
  random graph must finish (the Local-DRR run in single-digit seconds).
  Exit status is non-zero when any bar is missed.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.baselines import push_sum
from repro.core import DRRGossipConfig, drr_gossip_average, run_drr, run_local_drr
from repro.harness import make_values
from repro.substrate import run_chord_lookups
from repro.topology import ChordNetwork, random_regular_graph


# --------------------------------------------------------------------------- #
# pytest-benchmark micro-benchmarks
# --------------------------------------------------------------------------- #
def test_bench_drr_vectorized(benchmark):
    benchmark(run_drr, 4096, rng=1)


def test_bench_drr_engine(benchmark):
    benchmark(run_drr, 512, rng=1, backend="engine")


def test_bench_push_sum_vectorized(benchmark):
    values = make_values("uniform", 4096, np.random.default_rng(0))
    benchmark(push_sum, values, rng=2)


def test_bench_push_sum_engine(benchmark):
    values = make_values("uniform", 1024, np.random.default_rng(0))
    benchmark(push_sum, values, rng=2, backend="engine")


def test_bench_full_average_pipeline(benchmark):
    values = make_values("normal", 2048, np.random.default_rng(0))
    result = benchmark(drr_gossip_average, values, rng=3)
    assert result.max_relative_error < 1e-2


def test_bench_local_drr_vectorized(benchmark):
    topo = random_regular_graph(4096, 4, np.random.default_rng(0))
    benchmark(run_local_drr, topo, rng=1)


def test_bench_chord_lookup_batch(benchmark):
    rng = np.random.default_rng(0)
    chord = ChordNetwork(4096, rng)
    sources = rng.integers(0, 4096, size=4096)
    targets = rng.integers(0, chord.ring_size, size=4096)
    benchmark(run_chord_lookups, chord, sources, targets, rng=1)


# --------------------------------------------------------------------------- #
# CI smoke mode
# --------------------------------------------------------------------------- #
def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def smoke_speedup(n: int, rounds: int, min_speedup: float) -> bool:
    """Vectorized vs engine on uniform gossip (push-sum), same seed and rounds."""
    values = np.random.default_rng(0).uniform(0.0, 100.0, size=n)
    vectorized_s = _time(lambda: push_sum(values, rng=1, rounds=rounds))
    engine_s = _time(lambda: push_sum(values, rng=1, rounds=rounds, backend="engine"))
    speedup = engine_s / max(vectorized_s, 1e-9)
    print(
        f"uniform gossip, n={n}, rounds={rounds}: "
        f"vectorized {vectorized_s:.3f}s, engine {engine_s:.3f}s -> {speedup:.1f}x"
    )
    if speedup < min_speedup:
        print(f"FAIL: speedup {speedup:.1f}x below the required {min_speedup:g}x")
        return False
    print(f"OK: vectorized backend wins by >= {min_speedup:g}x")
    return True


def smoke_local_drr_speedup(n: int, min_speedup: float) -> bool:
    """Vectorized vs engine Local-DRR on a random 4-regular graph."""
    topo = random_regular_graph(n, 4, np.random.default_rng(0))
    vectorized_s = _time(lambda: run_local_drr(topo, rng=1))
    engine_s = _time(lambda: run_local_drr(topo, rng=1, backend="engine"))
    speedup = engine_s / max(vectorized_s, 1e-9)
    print(
        f"local-drr, n={n} (random 4-regular): "
        f"vectorized {vectorized_s:.3f}s, engine {engine_s:.3f}s -> {speedup:.1f}x"
    )
    if speedup < min_speedup:
        print(f"FAIL: local-drr speedup {speedup:.1f}x below the required {min_speedup:g}x")
        return False
    print(f"OK: vectorized local-drr wins by >= {min_speedup:g}x")
    return True


def smoke_chord_batch(n: int) -> bool:
    """A batch of n Chord lookups completes, identically on both backends."""
    rng = np.random.default_rng(0)
    chord = ChordNetwork(n, rng)
    sources = rng.integers(0, n, size=n)
    targets = rng.integers(0, chord.ring_size, size=n)
    fast = run_chord_lookups(chord, sources, targets, rng=1, backend="vectorized")
    engine = run_chord_lookups(chord, sources, targets, rng=1, backend="engine")
    print(
        f"chord lookup batch, n={n}: {fast.rounds} rounds, "
        f"{fast.messages} messages, completion={fast.completion_fraction:.3f}"
    )
    if fast.completion_fraction != 1.0:
        print("FAIL: chord lookup batch did not complete on a reliable network")
        return False
    if not (np.array_equal(fast.owners, engine.owners) and fast.rounds == engine.rounds):
        print("FAIL: chord lookup backends disagree")
        return False
    print("OK: chord lookup batch completes identically on both backends")
    return True


def smoke_local_drr_scale(n: int, budget_s: float = 9.0) -> bool:
    """Vectorized Local-DRR on an n-node sparse graph in single-digit seconds."""
    topo = random_regular_graph(n, 4, np.random.default_rng(0))
    start = time.perf_counter()
    result = run_local_drr(topo, rng=1)
    elapsed = time.perf_counter() - start
    trees = result.forest.root_count
    expected = topo.expected_local_drr_trees()
    print(
        f"local-drr, n={n} (random 4-regular): {elapsed:.2f}s, "
        f"trees={trees} (theory {expected:.0f}), messages={result.metrics.total_messages}"
    )
    if elapsed > budget_s:
        print(f"FAIL: local-drr at n={n} took {elapsed:.1f}s (> {budget_s:g}s)")
        return False
    if not (0.8 * expected < trees < 1.2 * expected):
        print("FAIL: tree count far from the Theorem 13 expectation")
        return False
    print("OK: vectorized local-drr handles sparse graphs at scale")
    return True


def smoke_scale(n: int) -> bool:
    """A full DRR-gossip-average run must complete at scale, vectorized."""
    values = np.random.default_rng(0).uniform(0.0, 100.0, size=n)
    start = time.perf_counter()
    result = drr_gossip_average(values, rng=1, config=DRRGossipConfig(backend="vectorized"))
    elapsed = time.perf_counter() - start
    print(
        f"drr_gossip_average, n={n}: {elapsed:.1f}s, rounds={result.rounds}, "
        f"messages={result.messages}, max_rel_error={result.max_relative_error:.2e}, "
        f"coverage={result.coverage:.3f}"
    )
    if not (result.coverage == 1.0 and result.max_relative_error < 1e-3):
        print("FAIL: scale run did not converge")
        return False
    print("OK: full pipeline completes at scale under the vectorized backend")
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=100_000, help="nodes for the speedup comparison")
    parser.add_argument("--rounds", type=int, default=5, help="gossip rounds for the comparison")
    parser.add_argument("--min-speedup", type=float, default=5.0)
    parser.add_argument(
        "--scale", action="store_true",
        help="also run the 10^6-node drr_gossip_average completion check",
    )
    parser.add_argument("--scale-n", type=int, default=1_000_000)
    parser.add_argument("--chord-n", type=int, default=4096, help="nodes/lookups for the Chord batch check")
    args = parser.parse_args(argv)

    ok = smoke_speedup(args.n, args.rounds, args.min_speedup)
    ok = smoke_local_drr_speedup(args.n, args.min_speedup) and ok
    ok = smoke_chord_batch(args.chord_n) and ok
    if args.scale:
        ok = smoke_scale(args.scale_n) and ok
        ok = smoke_local_drr_scale(args.scale_n) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
