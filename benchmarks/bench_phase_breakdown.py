"""E11 -- Section 3.5 accounting: per-phase message breakdown of DRR-gossip."""

from __future__ import annotations

from conftest import emit

from repro.harness import run_phase_breakdown


def test_phase_breakdown(benchmark, full_sweep):
    ns = (256, 1024, 4096) if full_sweep else (256, 1024)
    result = benchmark.pedantic(
        run_phase_breakdown,
        kwargs=dict(ns=ns, repetitions=2, seed=9),
        iterations=1,
        rounds=1,
    )
    emit(result)
    for row in result.rows:
        shares = {k: v for k, v in row.items() if k.endswith("_share")}
        assert abs(sum(shares.values()) - 1.0) < 1e-6
        # The convergecast / broadcast phases are O(n) with constant ~1, so
        # they are always a small slice of the budget.
        assert row["convergecast_share"] < 0.15
        assert row["broadcast-root_share"] < 0.15
    # The DRR share grows with n (it is the only Theta(n log log n) phase).
    assert result.rows[-1]["drr_share"] >= result.rows[0]["drr_share"] - 0.02
