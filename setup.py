"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works on minimal offline environments where the
``wheel`` package (needed for PEP 517 editable builds with older setuptools)
is not available and pip falls back to the legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup()
