#!/usr/bin/env python3
"""Quickstart: compute network-wide aggregates with DRR-gossip.

This example mirrors the motivating use case of the paper's introduction: a
large distributed system in which every node holds one number and everyone
wants to know the global Max / Average / Count without any coordinator,
using only randomized gossip.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DRRGossipConfig,
    FailureModel,
    drr_gossip_average,
    drr_gossip_count,
    drr_gossip_max,
)


def main() -> None:
    n = 4096
    rng = np.random.default_rng(7)
    # every node holds one value (say, its current load in requests/second)
    values = rng.gamma(shape=2.0, scale=30.0, size=n)

    print(f"network of {n} nodes; true max={values.max():.2f}, true mean={values.mean():.2f}\n")

    # --- Max: exact at every node ----------------------------------------- #
    result = drr_gossip_max(values, rng=1)
    print("DRR-gossip-max")
    print(f"  every node learned {result.estimates[0]:.2f} (exact: {result.all_correct})")
    print(f"  rounds={result.rounds}, messages={result.messages} ({result.messages / n:.1f} per node)")
    print(f"  per-phase messages: {dict((k, v) for k, v in result.messages_by_phase().items() if v)}\n")

    # --- Average: converges to tiny relative error ------------------------ #
    result = drr_gossip_average(values, rng=2)
    print("DRR-gossip-ave")
    print(f"  worst relative error over all nodes: {result.max_relative_error:.2e}")
    print(f"  rounds={result.rounds}, messages={result.messages / n:.1f} per node\n")

    # --- Count: how many nodes are alive? ---------------------------------- #
    lossy = DRRGossipConfig(failure_model=FailureModel(loss_probability=0.05, crash_fraction=0.1))
    result = drr_gossip_count(values, rng=3, config=lossy)
    print("DRR-gossip-count on a faulty network (10% initial crashes, 5% message loss)")
    print(f"  surviving nodes: {int(result.exact)}")
    print(f"  fraction of nodes that learned an estimate: {result.coverage:.2f}")
    learned = result.estimates[result.learned]
    print(f"  fraction of those that got it exactly right: {np.mean(learned == result.exact):.2f}")


if __name__ == "__main__":
    main()
