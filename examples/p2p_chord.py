#!/usr/bin/env python3
"""Peer-to-peer scenario: aggregates over a Chord overlay (Section 4).

In a P2P network a node can only talk to its overlay neighbours, so the
complete-graph phone-call model does not apply directly.  Section 4 of the
paper shows that Local-DRR (attach to your highest-ranked neighbour) still
produces O(log n)-height trees on any graph, and that DRR-gossip then beats
uniform gossip on Chord by a log n factor in messages.

This example builds a Chord ring, runs Local-DRR + convergecast to compute
the maximum file count per peer, and compares the measured routing cost of
DRR-style root gossip against all-nodes uniform gossip.

Run with::

    python examples/p2p_chord.py
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import run_convergecast, run_local_drr
from repro.topology import ChordNetwork, ChordSampler


def main() -> None:
    n = 512
    rng = np.random.default_rng(11)
    chord = ChordNetwork(n, rng)
    topology = chord.to_topology()
    sampler = ChordSampler(chord)
    files_per_peer = rng.pareto(1.2, size=n) * 50.0  # heavy-tailed file counts

    print(f"Chord ring with {n} peers, average overlay degree {chord.average_degree():.1f}")

    # Phase I: Local-DRR over the overlay graph.
    local = run_local_drr(topology, rng=rng)
    forest = local.forest
    print(f"Local-DRR: {forest.root_count} trees, max height {forest.max_tree_height} "
          f"(log2 n = {math.log2(n):.1f}), {local.metrics.total_messages} messages")

    # Phase II: per-tree maxima at the roots.
    cov = run_convergecast(local, files_per_peer, op="max", rng=rng)
    local_maxima = cov.value_vector(forest.roots)
    print(f"convergecast: {cov.metrics.phase('convergecast').messages} messages, "
          f"{cov.rounds} rounds; best local max {local_maxima.max():.0f} "
          f"(true max {files_per_peer.max():.0f})")

    # Phase III cost model: roots sample random peers through Chord routing.
    gossip_rounds = int(2 * math.log2(n)) + 4
    drr_messages = local.metrics.total_messages + cov.metrics.phase("convergecast").messages
    for _ in range(gossip_rounds):
        for root in forest.roots:
            cost = sampler.sample(int(root), rng)
            drr_messages += cost.messages + int(forest.depth[cost.peer])

    uniform_messages = 0
    for _ in range(gossip_rounds):
        for peer in range(n):
            uniform_messages += sampler.sample(peer, rng).messages

    print("\nmessage cost of the gossip stage over Chord routing")
    print(f"  DRR-gossip (roots only)  : {drr_messages:>8d}  (~{drr_messages / n:.1f} per peer)")
    print(f"  uniform gossip (all peers): {uniform_messages:>8d}  (~{uniform_messages / n:.1f} per peer)")
    print(f"  ratio: {uniform_messages / drr_messages:.1f}x "
          f"(theory predicts the gap grows like log n = {math.log2(n):.1f})")


if __name__ == "__main__":
    main()
