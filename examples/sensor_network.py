#!/usr/bin/env python3
"""Sensor-network scenario: aggregate battery statistics under failures.

The paper motivates aggregate computation with sensor networks: "knowing the
average or maximum remaining battery power among the sensor nodes is a
critical statistic".  This example models a deployment of battery-powered
sensors where

* a fraction of the sensors has already died (initial crashes),
* the radio links are lossy (per-message loss probability delta), and
* the operators want the minimum, average, and the rank of a low-battery
  threshold (how many sensors are at or below 20%), comparing DRR-gossip
  against the uniform-gossip baseline on both accuracy and message cost.

Run with::

    python examples/sensor_network.py
"""

from __future__ import annotations

import numpy as np

from repro import DRRGossipConfig, FailureModel, drr_gossip_average, drr_gossip_min, drr_gossip_rank
from repro.baselines import push_sum


def main() -> None:
    n = 2048
    rng = np.random.default_rng(42)
    # battery levels in percent: a mixture of fresh and ageing sensors
    battery = np.clip(np.concatenate([
        rng.normal(80, 10, size=n // 2),
        rng.normal(35, 15, size=n - n // 2),
    ]), 1.0, 100.0)
    rng.shuffle(battery)

    failure_model = FailureModel(loss_probability=0.05, crash_fraction=0.08)
    config = DRRGossipConfig(failure_model=failure_model)

    print(f"{n} sensors, 8% already dead, 5% message loss")
    print(f"ground truth over all deployed sensors: min={battery.min():.1f}%, mean={battery.mean():.1f}%\n")

    minimum = drr_gossip_min(battery, rng=1, config=config)
    print("minimum remaining battery (DRR-gossip-min)")
    print(f"  survivors' true minimum : {minimum.exact:.1f}%")
    learned = minimum.estimates[minimum.learned]
    print(f"  nodes with the exact answer: {np.mean(learned == minimum.exact) * 100:.1f}% of reachable nodes")
    print(f"  cost: {minimum.rounds} rounds, {minimum.messages / n:.1f} messages/sensor\n")

    average = drr_gossip_average(battery, rng=2, config=config)
    print("average remaining battery (DRR-gossip-ave)")
    print(f"  survivors' true average : {average.exact:.2f}%")
    print(f"  worst relative error    : {average.max_relative_error * 100:.2f}%")
    print(f"  cost: {average.messages / n:.1f} messages/sensor\n")

    threshold = 20.0
    rank = drr_gossip_rank(battery, query=threshold, rng=3, config=config)
    print(f"sensors at or below {threshold:.0f}% battery (DRR-gossip-rank)")
    print(f"  true count among survivors: {int(rank.exact)}")
    print(f"  estimate at node 0 (if reached): {rank.estimates[0] if rank.learned[0] else 'not reached'}\n")

    baseline = push_sum(battery, rng=4, failure_model=failure_model)
    print("baseline: uniform gossip (Kempe et al. push-sum) for the average")
    print(f"  worst relative error    : {baseline.max_relative_error * 100:.2f}%")
    print(f"  cost: {baseline.messages / n:.1f} messages/sensor "
          f"({baseline.messages / max(1, average.messages):.1f}x the DRR-gossip cost)")


if __name__ == "__main__":
    main()
