#!/usr/bin/env python3
"""Demonstrate the Section 5 lower bound: why address-obliviousness is expensive.

Theorem 15 proves any address-oblivious protocol needs Omega(n log n)
messages to compute Max, while rumor spreading (and non-address-oblivious
DRR-gossip) gets by with O(n log log n).  This example measures all three
curves over a small sweep of network sizes and prints the per-node message
cost so the widening gap is visible directly.

Run with::

    python examples/lower_bound_demo.py
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis import adversarial_push_max_messages
from repro.baselines import push_pull_rumor
from repro.core import drr_gossip_max


def main() -> None:
    print(f"{'n':>6} | {'oblivious max':>14} | {'rumor spread':>13} | {'DRR-gossip':>11} | n log2 n")
    print("-" * 72)
    for n in (128, 256, 512, 1024):
        adversarial = adversarial_push_max_messages(n, rng=1, target_fraction=0.9)
        rumor = push_pull_rumor(n, rng=2)
        values = np.random.default_rng(3).uniform(size=n)
        drr = drr_gossip_max(values, rng=4)
        print(
            f"{n:>6} | {adversarial.messages_to_target / n:>11.1f}/nd | "
            f"{rumor.messages / n:>10.1f}/nd | {drr.messages / n:>8.1f}/nd | {math.log2(n):>7.1f}"
        )
    print(
        "\nThe address-oblivious column tracks log2 n (the Omega(n log n) bound);\n"
        "rumor spreading and DRR-gossip stay nearly flat (Theta(n log log n))."
    )


if __name__ == "__main__":
    main()
